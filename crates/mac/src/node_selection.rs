//! Node selection (§V-C).
//!
//! When power control alone cannot save a tag — it is too far away, or
//! sits within half a wavelength of another tag — the system abandons it
//! and promotes an idle tag instead. The paper's procedure:
//!
//! * a tag is **bad** when its ACK rate stays below 70 % after power
//!   control,
//! * candidate replacements are scored by the *theoretical* received
//!   signal strength (Friis field, Eq. 1 / Fig. 5),
//! * a better-scoring candidate is always accepted; a worse one is
//!   accepted with a probability that decreases as the time/temperature
//!   parameter T grows (simulated-annealing-style exploration),
//! * candidates within λ/2 of an already-selected tag are excluded
//!   ("once a tag is selected, we exclude those tags near to this
//!   selected tag").

use rand::Rng;

use cbma_channel::friis::BackscatterLink;
use cbma_types::geometry::Point;

/// The paper's bad-tag ACK threshold (70 %).
pub const BAD_TAG_ACK_THRESHOLD: f64 = 0.7;

/// The result of one replacement attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionOutcome {
    /// The candidate was accepted because it scores better.
    Improved {
        /// Score gain in dB.
        gain_db: f64,
    },
    /// A worse candidate was accepted by the annealing rule.
    AcceptedWorse {
        /// Score loss in dB (positive number).
        loss_db: f64,
    },
    /// The candidate was rejected.
    Rejected,
    /// The candidate violated the λ/2 exclusion radius.
    Excluded,
}

impl SelectionOutcome {
    /// Whether the candidate replaces the bad tag.
    pub fn accepted(&self) -> bool {
        matches!(
            self,
            SelectionOutcome::Improved { .. } | SelectionOutcome::AcceptedWorse { .. }
        )
    }
}

/// The greedy/annealing node selector.
#[derive(Debug, Clone)]
pub struct NodeSelector {
    link: BackscatterLink,
    es: Point,
    rx: Point,
    exclusion_radius: f64,
    temperature: f64,
    heating_rate: f64,
}

impl NodeSelector {
    /// Creates a selector for the deployment geometry.
    ///
    /// The exclusion radius defaults to λ/2 of the link's carrier; the
    /// temperature starts at 1 and grows by `heating_rate` per step,
    /// making worse positions ever less likely to be accepted.
    pub fn new(link: BackscatterLink, es: Point, rx: Point) -> NodeSelector {
        let lambda = link.carrier.wavelength().get();
        NodeSelector {
            link,
            es,
            rx,
            exclusion_radius: lambda / 2.0,
            temperature: 1.0,
            heating_rate: 1.5,
        }
    }

    /// The λ/2 exclusion radius in meters.
    #[inline]
    pub fn exclusion_radius(&self) -> f64 {
        self.exclusion_radius
    }

    /// Current temperature T (grows over time; larger T → stricter).
    #[inline]
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Theoretical received signal strength at a tag position, in dBm —
    /// the score the greedy ascent follows (Fig. 5 field).
    pub fn score(&self, tag: Point) -> f64 {
        self.link.received_power(self.es, tag, self.rx).get()
    }

    /// Probability of accepting a candidate `loss_db` worse than the
    /// incumbent at the current temperature: exp(−loss·T)/1 — decreasing
    /// in both loss and T ("worse positions are more likely to be allowed
    /// at the start when T is small").
    pub fn accept_worse_probability(&self, loss_db: f64) -> f64 {
        (-loss_db.max(0.0) * self.temperature).exp()
    }

    /// Advances the time/temperature parameter after a selection round.
    pub fn step_time(&mut self) {
        self.temperature *= self.heating_rate;
    }

    /// Considers replacing the bad tag at `incumbent` with `candidate`,
    /// honouring the exclusion radius against `selected` (the positions
    /// of tags staying in the group).
    pub fn consider<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        incumbent: Point,
        candidate: Point,
        selected: &[Point],
    ) -> SelectionOutcome {
        if selected
            .iter()
            .any(|p| p.distance_to(candidate) < self.exclusion_radius)
        {
            return SelectionOutcome::Excluded;
        }
        let delta = self.score(candidate) - self.score(incumbent);
        if delta >= 0.0 {
            SelectionOutcome::Improved { gain_db: delta }
        } else {
            let loss = -delta;
            if rng.gen::<f64>() < self.accept_worse_probability(loss) {
                SelectionOutcome::AcceptedWorse { loss_db: loss }
            } else {
                SelectionOutcome::Rejected
            }
        }
    }

    /// Runs a full replacement pass: for the bad tag at index `bad` in
    /// `group`, tries the `idle` candidates in random order and applies
    /// the first accepted one. Returns the index into `idle` that was
    /// promoted, if any. On success the positions are swapped in `group`.
    pub fn replace_bad_tag<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        group: &mut [Point],
        bad: usize,
        idle: &[Point],
    ) -> Option<usize> {
        assert!(bad < group.len(), "bad index out of range");
        let incumbent = group[bad];
        let others: Vec<Point> = group
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != bad)
            .map(|(_, p)| *p)
            .collect();
        // Random visiting order.
        let mut order: Vec<usize> = (0..idle.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for cand_idx in order {
            let outcome = self.consider(rng, incumbent, idle[cand_idx], &others);
            if outcome.accepted() {
                group[bad] = idle[cand_idx];
                self.step_time();
                return Some(cand_idx);
            }
        }
        self.step_time();
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn selector() -> NodeSelector {
        NodeSelector::new(
            BackscatterLink::paper_default(),
            Point::from_cm(-50.0, 0.0),
            Point::from_cm(50.0, 0.0),
        )
    }

    #[test]
    fn score_follows_the_friis_field() {
        let s = selector();
        // A tag near the ES/RX axis beats a far corner.
        assert!(s.score(Point::new(0.0, 0.3)) > s.score(Point::new(2.0, 3.0)));
    }

    #[test]
    fn better_candidate_always_accepted() {
        let s = selector();
        let mut rng = StdRng::seed_from_u64(1);
        let out = s.consider(
            &mut rng,
            Point::new(2.0, 3.0), // weak incumbent
            Point::new(0.0, 0.3), // strong candidate
            &[],
        );
        assert!(matches!(out, SelectionOutcome::Improved { gain_db } if gain_db > 0.0));
    }

    #[test]
    fn exclusion_radius_is_half_wavelength() {
        let s = selector();
        // λ at 2 GHz ≈ 0.15 m → exclusion ≈ 7.5 cm.
        assert!((s.exclusion_radius() - 0.0749).abs() < 0.001);
        let mut rng = StdRng::seed_from_u64(2);
        let near_selected = Point::new(0.50, 0.30);
        let out = s.consider(
            &mut rng,
            Point::new(2.0, 3.0),
            Point::new(0.52, 0.30), // 2 cm from a selected tag
            &[near_selected],
        );
        assert_eq!(out, SelectionOutcome::Excluded);
    }

    #[test]
    fn worse_candidates_get_less_likely_as_time_grows() {
        let mut s = selector();
        let p_early = s.accept_worse_probability(1.0);
        s.step_time();
        s.step_time();
        let p_late = s.accept_worse_probability(1.0);
        assert!(p_early > p_late);
        assert!(p_early < 1.0 && p_late > 0.0);
    }

    #[test]
    fn acceptance_probability_decreases_with_loss() {
        let s = selector();
        assert!(s.accept_worse_probability(0.5) > s.accept_worse_probability(3.0));
        assert_eq!(s.accept_worse_probability(0.0), 1.0);
    }

    #[test]
    fn replace_bad_tag_improves_group() {
        let mut s = selector();
        let mut rng = StdRng::seed_from_u64(3);
        let mut group = vec![Point::new(0.0, 0.4), Point::new(1.9, 2.9)];
        let idle = vec![Point::new(0.2, -0.4), Point::new(-0.3, 0.5)];
        let before = s.score(group[1]);
        let promoted = s.replace_bad_tag(&mut rng, &mut group, 1, &idle);
        assert!(promoted.is_some());
        assert!(s.score(group[1]) > before);
    }

    #[test]
    fn replace_with_no_candidates_returns_none() {
        let mut s = selector();
        let mut rng = StdRng::seed_from_u64(4);
        let mut group = vec![Point::new(0.0, 0.4)];
        assert_eq!(s.replace_bad_tag(&mut rng, &mut group, 0, &[]), None);
    }

    #[test]
    fn rejected_worse_candidate_leaves_group_unchanged() {
        let mut s = selector();
        // Heat the selector so worse candidates are essentially never
        // accepted.
        for _ in 0..40 {
            s.step_time();
        }
        let mut rng = StdRng::seed_from_u64(5);
        let strong = Point::new(0.0, 0.3);
        let mut group = vec![strong];
        let idle = vec![Point::new(2.0, 3.0)]; // much worse
        let promoted = s.replace_bad_tag(&mut rng, &mut group, 0, &idle);
        assert_eq!(promoted, None);
        assert_eq!(group[0], strong);
    }

    #[test]
    fn outcome_accepted_helper() {
        assert!(SelectionOutcome::Improved { gain_db: 1.0 }.accepted());
        assert!(SelectionOutcome::AcceptedWorse { loss_db: 1.0 }.accepted());
        assert!(!SelectionOutcome::Rejected.accepted());
        assert!(!SelectionOutcome::Excluded.accepted());
    }
}
