//! Algorithm 1 — Power Control.
//!
//! The paper's pseudo-code, reproduced:
//!
//! ```text
//! Input:  received signal I, Q; data M
//! Output: adjusting impedance (Z) strategy
//!  1  P ← (I² + Q²)^(1/2)
//!  2  downsampling
//!  3  n ← number of tags
//!  4  m ← number of packets
//!  5  for i = 1 → n:
//!  6      ACKᵢ ← 0
//!  7      while there is data:
//!  8          if preamble is detected: ACKᵢ ← ACKᵢ + 1
//!  9      ACKratioᵢ ← ACKᵢ / m
//! 14  FER = 1 − Σ_{i∈n} ACKᵢ / n
//! 15  if FER > Threshold:
//! 16      for i = 1 → n:
//! 17          if ACKratioᵢ < 50 %:
//! 18              if Z == Z_max: Z ← 1 else: Z ← Z + 1
//! 26  return Z
//! ```
//!
//! Lines 1–9 (signal processing and ACK counting) happen in `cbma-rx` and
//! the simulation engine; this module implements the decision logic of
//! lines 14–26, plus the paper's loop bound: "we limit the number of
//! execution cycles to 3 times the number of tags" (§V-B).

/// Per-round inputs to the controller: each tag's ACK ratio over the
/// round's packets.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundObservation {
    ack_ratios: Vec<f64>,
}

impl RoundObservation {
    /// Builds an observation from per-tag ACK ratios (each in [0, 1]).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any ratio is outside [0, 1].
    pub fn from_ack_ratios(ratios: &[f64]) -> RoundObservation {
        debug_assert!(
            ratios.iter().all(|r| (0.0..=1.0).contains(r)),
            "ack ratios must be within [0, 1]"
        );
        RoundObservation {
            ack_ratios: ratios.to_vec(),
        }
    }

    /// Builds an observation from raw ACK counts and the packet count m.
    ///
    /// # Panics
    ///
    /// Panics if `packets` is zero.
    pub fn from_counts(acks: &[u64], packets: u64) -> RoundObservation {
        assert!(packets > 0, "need at least one packet per round");
        RoundObservation {
            ack_ratios: acks
                .iter()
                .map(|&a| (a as f64 / packets as f64).min(1.0))
                .collect(),
        }
    }

    /// Per-tag ACK ratios.
    pub fn ack_ratios(&self) -> &[f64] {
        &self.ack_ratios
    }

    /// The paper's line-14 frame error rate: 1 − mean ACK ratio.
    pub fn fer(&self) -> f64 {
        if self.ack_ratios.is_empty() {
            return 0.0;
        }
        1.0 - self.ack_ratios.iter().sum::<f64>() / self.ack_ratios.len() as f64
    }
}

/// One round's output: which tags should step their impedance.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerControlDecision {
    /// Indices of tags whose impedance should advance cyclically
    /// (Z ← Z + 1 wrapping at Z_max).
    pub step_impedance: Vec<usize>,
    /// The FER the decision was based on.
    pub fer: f64,
    /// Whether the controller has exhausted its cycle budget.
    pub exhausted: bool,
}

impl PowerControlDecision {
    /// Whether the round required no adjustment.
    pub fn is_stable(&self) -> bool {
        self.step_impedance.is_empty()
    }
}

/// The Algorithm 1 controller.
#[derive(Debug, Clone)]
pub struct PowerController {
    fer_threshold: f64,
    ack_ratio_floor: f64,
    max_cycles: usize,
    cycles_done: usize,
}

impl PowerController {
    /// Creates a controller for `n_tags` tags with a custom FER threshold.
    ///
    /// The cycle budget is the paper's 3 × n; the per-tag ACK-ratio floor
    /// is the paper's 50 %.
    ///
    /// # Panics
    ///
    /// Panics if `n_tags` is zero or `fer_threshold` is outside (0, 1).
    pub fn new(n_tags: usize, fer_threshold: f64) -> PowerController {
        assert!(n_tags > 0, "need at least one tag");
        assert!(
            fer_threshold > 0.0 && fer_threshold < 1.0,
            "FER threshold must be in (0, 1)"
        );
        PowerController {
            fer_threshold,
            ack_ratio_floor: 0.5,
            max_cycles: 3 * n_tags,
            cycles_done: 0,
        }
    }

    /// The paper's configuration: 50 % ACK floor, 3 n cycles, and a 10 %
    /// FER target.
    pub fn paper_default(n_tags: usize) -> PowerController {
        PowerController::new(n_tags, 0.1)
    }

    /// Creates a controller with an explicit cycle budget instead of the
    /// paper's 3 n (used by the cycle-cap ablation).
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero or `fer_threshold` is outside (0, 1).
    pub fn with_cycle_budget(fer_threshold: f64, budget: usize) -> PowerController {
        assert!(budget > 0, "cycle budget must be non-zero");
        assert!(
            fer_threshold > 0.0 && fer_threshold < 1.0,
            "FER threshold must be in (0, 1)"
        );
        PowerController {
            fer_threshold,
            ack_ratio_floor: 0.5,
            max_cycles: budget,
            cycles_done: 0,
        }
    }

    /// Remaining adjustment cycles before the controller gives up (hands
    /// over to node selection, §V-C).
    pub fn cycles_remaining(&self) -> usize {
        self.max_cycles.saturating_sub(self.cycles_done)
    }

    /// Runs one control round (lines 14–26).
    pub fn round(&mut self, obs: &RoundObservation) -> PowerControlDecision {
        let fer = obs.fer();
        if self.cycles_done >= self.max_cycles {
            return PowerControlDecision {
                step_impedance: Vec::new(),
                fer,
                exhausted: true,
            };
        }
        let mut step = Vec::new();
        if fer > self.fer_threshold {
            for (i, &ratio) in obs.ack_ratios().iter().enumerate() {
                if ratio < self.ack_ratio_floor {
                    step.push(i);
                }
            }
            if !step.is_empty() {
                self.cycles_done += 1;
            }
        }
        PowerControlDecision {
            step_impedance: step,
            fer,
            exhausted: self.cycles_done >= self.max_cycles,
        }
    }

    /// Resets the cycle budget (a new deployment round).
    pub fn reset(&mut self) {
        self.cycles_done = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_system_is_left_alone() {
        let mut pc = PowerController::paper_default(4);
        let obs = RoundObservation::from_ack_ratios(&[0.95, 0.97, 0.99, 0.96]);
        let d = pc.round(&obs);
        assert!(d.is_stable());
        assert!(d.fer < 0.1);
        assert!(!d.exhausted);
        assert_eq!(pc.cycles_remaining(), 12);
    }

    #[test]
    fn starving_tags_are_stepped() {
        let mut pc = PowerController::paper_default(3);
        let obs = RoundObservation::from_ack_ratios(&[0.9, 0.2, 0.4]);
        let d = pc.round(&obs);
        assert_eq!(d.step_impedance, vec![1, 2]);
        assert!((d.fer - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tags_above_half_are_not_stepped_even_when_fer_high() {
        // Only tags under the 50% ACK floor actuate (line 17).
        let mut pc = PowerController::paper_default(2);
        let obs = RoundObservation::from_ack_ratios(&[0.6, 0.55]);
        let d = pc.round(&obs);
        assert!(d.is_stable());
        assert!(d.fer > 0.1, "fer {}", d.fer);
    }

    #[test]
    fn low_fer_suppresses_all_adjustment() {
        // Even a sub-50% tag is left alone if the aggregate FER is under
        // threshold (line 15 gates line 17).
        let mut pc = PowerController::new(10, 0.2);
        let mut ratios = vec![1.0; 10];
        ratios[0] = 0.4;
        let d = pc.round(&RoundObservation::from_ack_ratios(&ratios));
        assert!(d.is_stable());
    }

    #[test]
    fn cycle_budget_is_3n() {
        let mut pc = PowerController::paper_default(2);
        let bad = RoundObservation::from_ack_ratios(&[0.0, 0.0]);
        for i in 0..6 {
            let d = pc.round(&bad);
            assert!(!d.step_impedance.is_empty(), "round {i} should adjust");
        }
        let d = pc.round(&bad);
        assert!(d.exhausted);
        assert!(d.is_stable(), "exhausted controller must stop actuating");
    }

    #[test]
    fn reset_restores_budget() {
        let mut pc = PowerController::paper_default(1);
        let bad = RoundObservation::from_ack_ratios(&[0.0]);
        for _ in 0..3 {
            pc.round(&bad);
        }
        assert_eq!(pc.cycles_remaining(), 0);
        pc.reset();
        assert_eq!(pc.cycles_remaining(), 3);
        assert!(!pc.round(&bad).is_stable());
    }

    #[test]
    fn stable_rounds_do_not_consume_budget() {
        let mut pc = PowerController::paper_default(2);
        let good = RoundObservation::from_ack_ratios(&[1.0, 1.0]);
        for _ in 0..100 {
            pc.round(&good);
        }
        assert_eq!(pc.cycles_remaining(), 6);
    }

    #[test]
    fn observation_from_counts() {
        let obs = RoundObservation::from_counts(&[10, 5, 0], 10);
        assert_eq!(obs.ack_ratios(), &[1.0, 0.5, 0.0]);
        assert!((obs.fer() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_observation_has_zero_fer() {
        assert_eq!(RoundObservation::from_ack_ratios(&[]).fer(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one packet")]
    fn zero_packets_panics() {
        RoundObservation::from_counts(&[1], 0);
    }
}
