//! Medium-access control for CBMA: power control, node selection, and the
//! baselines the paper compares against.
//!
//! * [`power_control`] — a faithful port of the paper's **Algorithm 1**:
//!   the receiver-side loop that watches per-tag ACK ratios and cyclically
//!   steps the antenna impedance of tags whose ratio falls below 50 %,
//!   bounded to 3 × n cycles,
//! * [`node_selection`] — the §V-C scheme: abandon tags whose ACK rate
//!   stays below 70 % after power control, and replace them with idle tags
//!   chosen by a greedy ascent on the theoretical Friis field with a
//!   temperature-controlled acceptance of worse positions and a λ/2
//!   exclusion radius around already-selected tags,
//! * [`access`] — who-transmits-when schemes: concurrent CBMA, round-robin
//!   **TDMA** and **framed slotted ALOHA**, behind one [`AccessScheme`]
//!   trait so the simulation engine and the throughput benches can swap
//!   them freely.
//!
//! # Examples
//!
//! ```
//! use cbma_mac::power_control::{PowerController, RoundObservation};
//!
//! let mut pc = PowerController::paper_default(3);
//! let decision = pc.round(&RoundObservation::from_ack_ratios(&[0.9, 0.2, 0.8]));
//! assert_eq!(decision.step_impedance, vec![1]); // only the starving tag
//! ```

pub mod access;
pub mod grouping;
pub mod node_selection;
pub mod power_control;
pub mod qalgo;

pub use access::{AccessScheme, CbmaAccess, FsaAccess, TdmaAccess};
pub use grouping::{GroupPlan, GroupedCbmaAccess};
pub use node_selection::{NodeSelector, SelectionOutcome};
pub use power_control::{PowerControlDecision, PowerController, RoundObservation};
pub use qalgo::QAlgoAccess;
