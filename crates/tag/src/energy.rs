//! Tag energy budgeting — §VI.
//!
//! "Signal reflection only consumes power in the scale of µW" — the whole
//! point of backscatter. This module makes that budget explicit so
//! applications can reason about battery-free operation: per-frame energy
//! drawn by the switch/controller, harvesting income from the excitation
//! field, and a [`EnergyBudget`] accumulator that says whether a duty
//! cycle is sustainable.

use serde::{Deserialize, Serialize};

use cbma_types::units::{Dbm, Seconds};
use cbma_types::Bits;

use crate::modulator::reflect_duty;
use crate::phy::PhyProfile;

/// Power draws of the tag's components (all in watts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TagPowerModel {
    /// Draw while actively toggling the SPDT switch (reflecting), W.
    /// The HMC190B-class switch plus drive is in the low-µW range.
    pub reflect_w: f64,
    /// Baseline controller/logic draw while a frame is in flight, W.
    pub controller_w: f64,
    /// Sleep draw between frames, W.
    pub sleep_w: f64,
    /// RF-to-DC harvesting efficiency in (0, 1].
    pub harvest_efficiency: f64,
}

impl TagPowerModel {
    /// Representative µW-scale figures for an FPGA-less production tag
    /// (the paper's prototype uses a lab FPGA; a deployed tag would use a
    /// µC or state machine).
    pub fn paper_default() -> TagPowerModel {
        TagPowerModel {
            reflect_w: 2.0e-6,
            controller_w: 8.0e-6,
            sleep_w: 0.1e-6,
            harvest_efficiency: 0.25,
        }
    }

    /// Energy (J) to transmit one spread frame of `chips` at `phy`'s chip
    /// rate: controller draw over the whole frame plus switch draw during
    /// the reflecting chips.
    pub fn frame_energy(&self, chips: &Bits, phy: &PhyProfile) -> f64 {
        let duration = chips.len() as f64 / phy.chip_rate.get();
        let duty = reflect_duty(chips);
        duration * (self.controller_w + self.reflect_w * duty)
    }

    /// Harvested power (W) from an incident RF power at the tag.
    pub fn harvest_power(&self, incident: Dbm) -> f64 {
        incident.to_watts().get() * self.harvest_efficiency
    }

    /// The largest sustainable frame duty cycle (fraction of wall-clock
    /// time spent transmitting) for a given incident power: harvest must
    /// cover transmit draw plus sleep draw.
    ///
    /// Returns a value clamped to [0, 1]; 0 means even sleeping exceeds
    /// the harvest.
    pub fn sustainable_duty(&self, incident: Dbm, chips: &Bits, phy: &PhyProfile) -> f64 {
        let harvest = self.harvest_power(incident);
        let duration = chips.len() as f64 / phy.chip_rate.get();
        let tx_power = self.frame_energy(chips, phy) / duration;
        if harvest <= self.sleep_w {
            return 0.0;
        }
        if tx_power <= harvest {
            return 1.0;
        }
        ((harvest - self.sleep_w) / (tx_power - self.sleep_w)).clamp(0.0, 1.0)
    }
}

impl Default for TagPowerModel {
    fn default() -> TagPowerModel {
        TagPowerModel::paper_default()
    }
}

/// A running energy account for one tag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBudget {
    stored_j: f64,
    capacity_j: f64,
}

impl EnergyBudget {
    /// Creates a budget with the given storage capacity, starting full.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_j` is not positive.
    pub fn new(capacity_j: f64) -> EnergyBudget {
        assert!(capacity_j > 0.0, "capacity must be positive");
        EnergyBudget {
            stored_j: capacity_j,
            capacity_j,
        }
    }

    /// Current stored energy (J).
    #[inline]
    pub fn stored(&self) -> f64 {
        self.stored_j
    }

    /// Storage fill fraction in [0, 1].
    pub fn fill(&self) -> f64 {
        self.stored_j / self.capacity_j
    }

    /// Harvests for `dt` at `power` watts (clamped at capacity).
    pub fn harvest(&mut self, power: f64, dt: Seconds) {
        self.stored_j = (self.stored_j + power * dt.get()).min(self.capacity_j);
    }

    /// Attempts to spend `energy_j`; returns whether the budget covered
    /// it (on failure nothing is drawn — the tag skips the frame).
    pub fn try_spend(&mut self, energy_j: f64) -> bool {
        if energy_j <= self.stored_j {
            self.stored_j -= energy_j;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbma_types::Bits;

    fn chips() -> Bits {
        // 50% duty, 1600 chips ≈ a small frame at SF 16.
        (0..1600u32).map(|i| (i % 2) as u8).collect()
    }

    #[test]
    fn frame_energy_is_microjoule_scale() {
        let model = TagPowerModel::paper_default();
        let phy = PhyProfile::paper_default();
        let e = model.frame_energy(&chips(), &phy);
        // 1600 chips at 1 Mcps = 1.6 ms; ~9 µW draw → ~14 nJ.
        assert!(e > 1e-9 && e < 1e-7, "frame energy {e:e} out of range");
    }

    #[test]
    fn duty_scales_reflect_energy() {
        let model = TagPowerModel::paper_default();
        let phy = PhyProfile::paper_default();
        let all_on: Bits = (0..1000u32).map(|_| 1u8).collect();
        let all_off: Bits = (0..1000u32).map(|_| 0u8).collect();
        let on = model.frame_energy(&all_on, &phy);
        let off = model.frame_energy(&all_off, &phy);
        assert!(on > off);
        // The difference is exactly the reflect power over the frame.
        let duration = 1000.0 / phy.chip_rate.get();
        assert!((on - off - model.reflect_w * duration).abs() < 1e-15);
    }

    #[test]
    fn strong_field_sustains_continuous_operation() {
        let model = TagPowerModel::paper_default();
        let phy = PhyProfile::paper_default();
        // 0 dBm incident (very close to the source): 250 µW harvested
        // easily covers ~9 µW of draw.
        assert_eq!(model.sustainable_duty(Dbm::new(0.0), &chips(), &phy), 1.0);
    }

    #[test]
    fn weak_field_throttles_duty() {
        let model = TagPowerModel::paper_default();
        let phy = PhyProfile::paper_default();
        // −17 dBm incident → 20 µW × 0.25 = 5 µW harvested < 9 µW draw:
        // partial duty.
        let duty = model.sustainable_duty(Dbm::new(-17.0), &chips(), &phy);
        assert!(duty > 0.0 && duty < 1.0, "duty {duty}");
    }

    #[test]
    fn dead_field_means_zero_duty() {
        let model = TagPowerModel::paper_default();
        let phy = PhyProfile::paper_default();
        assert_eq!(model.sustainable_duty(Dbm::new(-70.0), &chips(), &phy), 0.0);
    }

    #[test]
    fn budget_accumulates_and_spends() {
        let mut b = EnergyBudget::new(1e-6);
        assert_eq!(b.fill(), 1.0);
        assert!(b.try_spend(4e-7));
        assert!((b.stored() - 6e-7).abs() < 1e-18);
        assert!(!b.try_spend(1e-6), "overdraw must fail");
        assert!(
            (b.stored() - 6e-7).abs() < 1e-18,
            "failed spend draws nothing"
        );
        b.harvest(1e-6, Seconds::new(10.0));
        assert_eq!(b.fill(), 1.0, "harvest clamps at capacity");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        EnergyBudget::new(0.0);
    }
}
