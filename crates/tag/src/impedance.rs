//! The antenna impedance bank — the paper's power-control actuator.
//!
//! §VI: the tag's HMC190B SPDT switch selects among "a 3 pF capacitor, a
//! 1 pF capacitor, open impedance, and a 2 nH inductor". Backscatter
//! modulation toggles the antenna between a short-circuit reference state
//! and the selected load; the modulation depth is the reflection-
//! coefficient difference
//!
//! ```text
//! |ΔΓ| = |Γ_ref − Γ_load|,   Γ = (Z_L − Z₀) / (Z_L + Z₀)
//! ```
//!
//! Pure reactances all reflect with |Γ| = 1 but at different *phases*, so
//! the four loads yield four distinct |ΔΓ| values — four backscatter power
//! levels the control loop of Algorithm 1 steps through. This module
//! computes them from the actual component values at the 2 GHz carrier.

use std::f64::consts::TAU;

use serde::{Deserialize, Serialize};

use cbma_types::units::{Db, Hertz};
use cbma_types::Iq;

/// Antenna reference impedance (Ω).
pub const Z0: f64 = 50.0;

/// The four selectable antenna loads (§VI), ordered as the power-control
/// algorithm cycles them (Z = 1..=4 in Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ImpedanceState {
    /// 2 nH series inductor — the weakest backscatter level.
    Inductor2nH,
    /// 3 pF capacitor.
    Cap3pF,
    /// 1 pF capacitor.
    Cap1pF,
    /// Open circuit — the strongest backscatter level.
    Open,
}

impl ImpedanceState {
    /// All states in increasing-|ΔΓ| (increasing power) order.
    pub const ALL: [ImpedanceState; 4] = [
        ImpedanceState::Inductor2nH,
        ImpedanceState::Cap3pF,
        ImpedanceState::Cap1pF,
        ImpedanceState::Open,
    ];

    /// Algorithm 1's integer encoding Z ∈ 1..=4.
    pub fn index(self) -> usize {
        match self {
            ImpedanceState::Inductor2nH => 1,
            ImpedanceState::Cap3pF => 2,
            ImpedanceState::Cap1pF => 3,
            ImpedanceState::Open => 4,
        }
    }

    /// The state for Algorithm 1's integer encoding.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not in 1..=4.
    pub fn from_index(index: usize) -> ImpedanceState {
        match index {
            1 => ImpedanceState::Inductor2nH,
            2 => ImpedanceState::Cap3pF,
            3 => ImpedanceState::Cap1pF,
            4 => ImpedanceState::Open,
            other => panic!("impedance index must be 1..=4, got {other}"),
        }
    }

    /// The next state in Algorithm 1's cyclic order (wraps 4 → 1, the
    /// `if Z == Z_max { Z ← 1 } else { Z ← Z + 1 }` step).
    pub fn next_cyclic(self) -> ImpedanceState {
        let next = self.index() % 4 + 1;
        ImpedanceState::from_index(next)
    }

    /// The load impedance at carrier frequency `f` as a complex value
    /// (`None` for the open circuit, whose Γ is exactly +1).
    pub fn load_impedance(self, f: Hertz) -> Option<Iq> {
        let omega = TAU * f.get();
        match self {
            ImpedanceState::Cap3pF => Some(Iq::new(0.0, -1.0 / (omega * 3.0e-12))),
            ImpedanceState::Cap1pF => Some(Iq::new(0.0, -1.0 / (omega * 1.0e-12))),
            ImpedanceState::Open => None,
            ImpedanceState::Inductor2nH => Some(Iq::new(0.0, omega * 2.0e-9)),
        }
    }
}

/// Reflection coefficient Γ = (Z_L − Z₀)/(Z_L + Z₀) for a complex load.
pub fn reflection_coefficient(z_load: Iq) -> Iq {
    (z_load - Iq::new(Z0, 0.0)) / (z_load + Iq::new(Z0, 0.0))
}

/// The tag's impedance bank evaluated at a carrier frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImpedanceBank {
    carrier: Hertz,
}

impl ImpedanceBank {
    /// Creates the bank for the given carrier.
    ///
    /// # Panics
    ///
    /// Panics in debug builds for non-positive carriers.
    pub fn new(carrier: Hertz) -> ImpedanceBank {
        debug_assert!(carrier.get() > 0.0, "carrier must be positive");
        ImpedanceBank { carrier }
    }

    /// The paper's 2 GHz carrier (§VI).
    pub fn paper_default() -> ImpedanceBank {
        ImpedanceBank::new(Hertz::from_ghz(2.0))
    }

    /// Γ of the given state.
    pub fn gamma(&self, state: ImpedanceState) -> Iq {
        match state.load_impedance(self.carrier) {
            Some(z) => reflection_coefficient(z),
            None => Iq::ONE, // open circuit
        }
    }

    /// |ΔΓ| of the given state versus the short-circuit reference
    /// (Γ_ref = −1). In [0, 2].
    pub fn delta_gamma(&self, state: ImpedanceState) -> f64 {
        (self.gamma(state) - Iq::new(-1.0, 0.0)).abs()
    }

    /// Backscatter power of `state` relative to the strongest state.
    pub fn relative_power(&self, state: ImpedanceState) -> Db {
        let strongest = ImpedanceState::ALL
            .iter()
            .map(|s| self.delta_gamma(*s))
            .fold(0.0f64, f64::max);
        Db::from_amplitude_ratio(self.delta_gamma(state) / strongest)
    }
}

impl Default for ImpedanceBank {
    fn default() -> ImpedanceBank {
        ImpedanceBank::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reactive_loads_reflect_fully() {
        let bank = ImpedanceBank::paper_default();
        for state in ImpedanceState::ALL {
            let g = bank.gamma(state);
            assert!(
                (g.abs() - 1.0).abs() < 1e-12,
                "{state:?}: |Γ| = {} should be 1 for a lossless load",
                g.abs()
            );
        }
    }

    #[test]
    fn matched_load_does_not_reflect() {
        assert!(reflection_coefficient(Iq::new(Z0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn delta_gamma_values_at_2ghz() {
        // Hand-computed from the component values (see module docs):
        // 2 nH → 0.90, 3 pF → 0.94, 1 pF → 1.69, open → 2.0.
        let bank = ImpedanceBank::paper_default();
        let dg = |s| bank.delta_gamma(s);
        assert!((dg(ImpedanceState::Inductor2nH) - 0.899).abs() < 0.01);
        assert!((dg(ImpedanceState::Cap3pF) - 0.937).abs() < 0.01);
        assert!((dg(ImpedanceState::Cap1pF) - 1.693).abs() < 0.01);
        assert!((dg(ImpedanceState::Open) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn states_are_power_ordered() {
        let bank = ImpedanceBank::paper_default();
        let mut last = 0.0;
        for state in ImpedanceState::ALL {
            let dg = bank.delta_gamma(state);
            assert!(dg > last, "{state:?} breaks the power ordering");
            last = dg;
        }
    }

    #[test]
    fn relative_power_spans_about_7db() {
        let bank = ImpedanceBank::paper_default();
        assert_eq!(bank.relative_power(ImpedanceState::Open), Db::ZERO);
        let weakest = bank.relative_power(ImpedanceState::Inductor2nH).get();
        assert!((-8.0..=-6.0).contains(&weakest), "span = {weakest} dB");
    }

    #[test]
    fn cyclic_stepping_matches_algorithm_1() {
        // Z=Z_max wraps to 1; otherwise Z+1.
        assert_eq!(
            ImpedanceState::Inductor2nH.next_cyclic(),
            ImpedanceState::Cap3pF
        );
        assert_eq!(ImpedanceState::Cap3pF.next_cyclic(), ImpedanceState::Cap1pF);
        assert_eq!(ImpedanceState::Cap1pF.next_cyclic(), ImpedanceState::Open);
        assert_eq!(
            ImpedanceState::Open.next_cyclic(),
            ImpedanceState::Inductor2nH
        );
    }

    #[test]
    fn index_round_trip() {
        for state in ImpedanceState::ALL {
            assert_eq!(ImpedanceState::from_index(state.index()), state);
        }
    }

    #[test]
    #[should_panic(expected = "1..=4")]
    fn bad_index_panics() {
        ImpedanceState::from_index(0);
    }

    #[test]
    fn capacitor_impedances_at_2ghz() {
        // |Z| of 3 pF at 2 GHz ≈ 26.5 Ω; 1 pF ≈ 79.6 Ω; 2 nH ≈ 25.1 Ω.
        let f = Hertz::from_ghz(2.0);
        let z3 = ImpedanceState::Cap3pF.load_impedance(f).unwrap();
        assert!((z3.abs() - 26.53).abs() < 0.1);
        assert!(z3.im < 0.0);
        let z1 = ImpedanceState::Cap1pF.load_impedance(f).unwrap();
        assert!((z1.abs() - 79.58).abs() < 0.1);
        let zl = ImpedanceState::Inductor2nH.load_impedance(f).unwrap();
        assert!((zl.abs() - 25.13).abs() < 0.1);
        assert!(zl.im > 0.0);
        assert!(ImpedanceState::Open.load_impedance(f).is_none());
    }
}
