//! CRC-16 frame check sequence.
//!
//! The frame carries "two bytes of cyclic redundancy check to verify
//! whether error has occurred" (§III-A). We use CRC-16/CCITT-FALSE
//! (polynomial 0x1021, init 0xFFFF) — the ubiquitous 16-bit CRC in
//! low-power radio framing.

/// The CRC polynomial x¹⁶ + x¹² + x⁵ + 1.
pub const POLYNOMIAL: u16 = 0x1021;

/// The initial register value.
pub const INITIAL: u16 = 0xFFFF;

/// Computes the CRC-16/CCITT-FALSE of `data`.
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc = INITIAL;
    for &byte in data {
        crc ^= u16::from(byte) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ POLYNOMIAL;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// Verifies that `expected` matches the CRC of `data`.
pub fn verify(data: &[u8], expected: u16) -> bool {
    crc16(data) == expected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        // The canonical CRC-16/CCITT-FALSE check: "123456789" → 0x29B1.
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    #[test]
    fn empty_input_is_initial_value() {
        assert_eq!(crc16(&[]), INITIAL);
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let data = b"backscatter";
        let crc = crc16(data);
        assert!(verify(data, crc));
        assert!(!verify(data, crc ^ 1));
        assert!(!verify(b"backscattex", crc));
    }

    #[test]
    fn detects_single_bit_flips() {
        // A CRC-16 detects all single-bit errors.
        let data = b"cbma frame payload".to_vec();
        let crc = crc16(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc16(&corrupted), crc, "missed flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn detects_swapped_bytes() {
        let a = crc16(&[0x12, 0x34]);
        let b = crc16(&[0x34, 0x12]);
        assert_ne!(a, b);
    }

    #[test]
    fn crc_is_deterministic() {
        let data = vec![0xA5; 126];
        assert_eq!(crc16(&data), crc16(&data));
    }
}
