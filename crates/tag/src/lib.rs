//! The CBMA backscatter tag.
//!
//! Models the paper's customized passive tag (§III-A, §VI): a PCB with
//! SPDT switches, four selectable antenna loads, and an FPGA that frames,
//! spreads and OOK-modulates the data. The modules mirror the tag's signal
//! path:
//!
//! * [`crc`] — the CRC-16 that closes every frame,
//! * [`frame`] — the frame format: preamble `10101010`, length byte,
//!   ≤126-byte payload, 2-byte CRC,
//! * [`encoder`] — PN spreading (each data bit becomes one code word;
//!   a `0` sends the complement per footnote 2),
//! * [`modulator`] — OOK chip-envelope generation at the receiver sample
//!   rate (the square-wave subcarrier itself is absorbed into the complex
//!   baseband model, see DESIGN.md),
//! * [`impedance`] — the four antenna loads (3 pF, 1 pF, open, 2 nH
//!   through an HMC190B SPDT) and the reflection-coefficient difference
//!   |ΔΓ| each produces — the paper's power-control actuator,
//! * [`phy`] — the air-interface profile shared by tag and receiver,
//! * [`tag`] — the tag state machine, including ACK bookkeeping for the
//!   power-control loop.
//!
//! # Examples
//!
//! ```
//! use cbma_tag::frame::Frame;
//! use cbma_tag::phy::PhyProfile;
//!
//! let frame = Frame::new(b"hello".to_vec())?;
//! let bits = frame.to_bits(PhyProfile::default().preamble_bits);
//! let decoded = Frame::from_bits(&bits, PhyProfile::default().preamble_bits)?;
//! assert_eq!(decoded.payload(), b"hello");
//! # Ok::<(), cbma_types::CbmaError>(())
//! ```

pub mod crc;
pub mod encoder;
pub mod energy;
pub mod frame;
pub mod impedance;
pub mod modulator;
pub mod phy;
pub mod tag;

pub use energy::{EnergyBudget, TagPowerModel};
pub use frame::Frame;
pub use impedance::{ImpedanceBank, ImpedanceState};
pub use phy::PhyProfile;
pub use tag::Tag;
