//! PN spreading encoder.
//!
//! "The structured frame is then processed by the encoding block using a PN
//! code … The data is then multiplied by the PN code" (§III-A). With
//! complement signalling (footnote 2), multiplying bit b by the code is the
//! XOR of the inverted bit with each chip: a `1` sends the code word, a `0`
//! sends its complement — reproducing the paper's worked example where
//! data "10" spread by "01001" yields "0100110110".

use cbma_codes::PnCode;
use cbma_types::Bits;

/// Spreads `data` with `code`: each data bit becomes one code word
/// (`code.len()` chips). Output length is `data.len() × code.len()`.
pub fn spread(data: &Bits, code: &PnCode) -> Bits {
    let mut out = Bits::with_capacity(data.len() * code.len());
    for bit in data.iter() {
        if bit == 1 {
            out.extend_bits(code.bits());
        } else {
            out.extend_bits(&code.bits().complement());
        }
    }
    out
}

/// Ideal (noise-free, chip-aligned) despreading: recovers the data bits by
/// majority agreement of each chip window with the code word. Used in
/// loopback tests; the real receiver decodes by correlation on IQ samples
/// in `cbma-rx`.
///
/// # Panics
///
/// Panics if `chips` is not a whole number of code words.
pub fn despread_exact(chips: &Bits, code: &PnCode) -> Bits {
    assert_eq!(
        chips.len() % code.len(),
        0,
        "chip stream must be a whole number of code words"
    );
    let n = code.len();
    let mut out = Bits::with_capacity(chips.len() / n);
    for word in 0..chips.len() / n {
        let window: Bits = (word * n..(word + 1) * n).map(|i| chips[i]).collect();
        let agree_one = n - window.hamming_distance(code.bits());
        out.push(if agree_one * 2 >= n { 1 } else { 0 });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbma_codes::{CodeFamily, GoldFamily, TwoNcFamily};

    #[test]
    fn paper_worked_example() {
        // §III-A: "10" with code "01001" → "0100110110".
        let code = PnCode::new(0, Bits::from_str("01001").unwrap());
        let spread_bits = spread(&Bits::from_str("10").unwrap(), &code);
        assert_eq!(spread_bits.to_string(), "0100110110");
    }

    #[test]
    fn spread_despread_round_trip_gold() {
        let family = GoldFamily::new(5).unwrap();
        let code = family.code(3).unwrap();
        let data = Bits::from_str("1011001110001011").unwrap();
        let chips = spread(&data, &code);
        assert_eq!(chips.len(), data.len() * 31);
        assert_eq!(despread_exact(&chips, &code), data);
    }

    #[test]
    fn spread_despread_round_trip_twonc() {
        let family = TwoNcFamily::new(10).unwrap();
        let code = family.code(7).unwrap();
        let data = Bits::from_str("010011").unwrap();
        assert_eq!(despread_exact(&spread(&data, &code), &code), data);
    }

    #[test]
    fn despread_survives_minority_chip_errors() {
        let family = GoldFamily::new(5).unwrap();
        let code = family.code(1).unwrap();
        let data = Bits::from_str("10").unwrap();
        let chips = spread(&data, &code);
        // Flip 10 of 31 chips in the first word: still a majority match.
        let mut raw: Vec<u8> = chips.iter().collect();
        for chip in raw.iter_mut().take(10) {
            *chip ^= 1;
        }
        let damaged = Bits::from_slice(&raw).unwrap();
        assert_eq!(despread_exact(&damaged, &code), data);
    }

    #[test]
    fn empty_data_spreads_to_empty() {
        let code = PnCode::new(0, Bits::from_str("0101").unwrap());
        assert!(spread(&Bits::new(), &code).is_empty());
        assert!(despread_exact(&Bits::new(), &code).is_empty());
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_chip_stream_panics() {
        let code = PnCode::new(0, Bits::from_str("0101").unwrap());
        despread_exact(&Bits::from_str("010").unwrap(), &code);
    }
}
