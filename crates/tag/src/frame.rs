//! The CBMA frame format (§III-A).
//!
//! > "The data of the tag being transmitted is first encapsulated to frames
//! > with the following fields: (1) one byte known preamble {10101010};
//! > (2) one byte data indicating the length of the frame; (3) up to 126
//! > bytes of payload data and (4) two bytes of cyclic redundancy check."
//!
//! The preamble length is configurable in bits (4–64) because Fig. 8(c)
//! sweeps it; the pattern is always alternating `10`, of which the default
//! 8 bits equal the `{10101010}` byte.

use serde::{Deserialize, Serialize};

use cbma_types::{Bits, CbmaError, Result};

use crate::crc::crc16;

/// Maximum payload size in bytes (§III-A).
pub const MAX_PAYLOAD: usize = 126;

/// Default preamble length: one byte.
pub const DEFAULT_PREAMBLE_BITS: usize = 8;

/// Returns the alternating `1010…` preamble pattern of `bits` bits.
pub fn preamble_pattern(bits: usize) -> Bits {
    (0..bits)
        .map(|i| if i % 2 == 0 { 1u8 } else { 0u8 })
        .collect()
}

/// A tag data frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    payload: Vec<u8>,
}

impl Frame {
    /// Creates a frame around `payload`.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::PayloadTooLarge`] for payloads above
    /// [`MAX_PAYLOAD`] bytes.
    pub fn new(payload: Vec<u8>) -> Result<Frame> {
        if payload.len() > MAX_PAYLOAD {
            return Err(CbmaError::PayloadTooLarge {
                actual: payload.len(),
                max: MAX_PAYLOAD,
            });
        }
        Ok(Frame { payload })
    }

    /// The payload bytes.
    #[inline]
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Consumes the frame, returning the payload.
    #[inline]
    pub fn into_payload(self) -> Vec<u8> {
        self.payload
    }

    /// Total over-the-air length in bits for a given preamble length:
    /// preamble + 8 (length byte) + payload + 16 (CRC).
    pub fn bit_len(&self, preamble_bits: usize) -> usize {
        preamble_bits + 8 + self.payload.len() * 8 + 16
    }

    /// Serializes the frame to its bit-level representation.
    pub fn to_bits(&self, preamble_bits: usize) -> Bits {
        let mut bits = preamble_pattern(preamble_bits);
        let mut body = Vec::with_capacity(1 + self.payload.len() + 2);
        body.push(self.payload.len() as u8);
        body.extend_from_slice(&self.payload);
        let crc = crc16(&self.payload);
        body.push((crc >> 8) as u8);
        body.push((crc & 0xFF) as u8);
        bits.extend_bits(&Bits::from_bytes_msb(&body));
        bits
    }

    /// Parses a frame from bits, verifying structure and CRC.
    ///
    /// # Errors
    ///
    /// * [`CbmaError::MalformedFrame`] when the buffer is too short, the
    ///   preamble does not match, or the length field is inconsistent.
    /// * [`CbmaError::CrcMismatch`] when the CRC check fails.
    pub fn from_bits(bits: &Bits, preamble_bits: usize) -> Result<Frame> {
        let min_len = preamble_bits + 8 + 16;
        if bits.len() < min_len {
            return Err(CbmaError::MalformedFrame(format!(
                "need at least {min_len} bits, got {}",
                bits.len()
            )));
        }
        let expected_preamble = preamble_pattern(preamble_bits);
        for i in 0..preamble_bits {
            if bits[i] != expected_preamble[i] {
                return Err(CbmaError::MalformedFrame(format!(
                    "preamble mismatch at bit {i}"
                )));
            }
        }
        let body_bits: Bits = (preamble_bits..bits.len()).map(|i| bits[i]).collect();
        // Length byte first.
        let len_byte = (0..8).fold(0usize, |acc, i| (acc << 1) | body_bits[i] as usize);
        if len_byte > MAX_PAYLOAD {
            return Err(CbmaError::MalformedFrame(format!(
                "length field {len_byte} exceeds maximum payload {MAX_PAYLOAD}"
            )));
        }
        let needed = 8 + len_byte * 8 + 16;
        if body_bits.len() < needed {
            return Err(CbmaError::MalformedFrame(format!(
                "length field {len_byte} implies {needed} body bits, got {}",
                body_bits.len()
            )));
        }
        let body: Bits = (0..needed).map(|i| body_bits[i]).collect();
        let bytes = body.to_bytes_msb()?;
        let payload = bytes[1..1 + len_byte].to_vec();
        let expected = (u16::from(bytes[1 + len_byte]) << 8) | u16::from(bytes[2 + len_byte]);
        let computed = crc16(&payload);
        if expected != computed {
            return Err(CbmaError::CrcMismatch { expected, computed });
        }
        Ok(Frame { payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_default_preamble() {
        let frame = Frame::new(b"sensor reading 42".to_vec()).unwrap();
        let bits = frame.to_bits(DEFAULT_PREAMBLE_BITS);
        assert_eq!(bits.len(), frame.bit_len(DEFAULT_PREAMBLE_BITS));
        let decoded = Frame::from_bits(&bits, DEFAULT_PREAMBLE_BITS).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn round_trip_all_preamble_lengths() {
        // Fig. 8(c): preamble lengths 4, 8, 16, 32, 64.
        let frame = Frame::new(vec![1, 2, 3]).unwrap();
        for preamble in [4usize, 8, 16, 32, 64] {
            let bits = frame.to_bits(preamble);
            let decoded = Frame::from_bits(&bits, preamble).unwrap();
            assert_eq!(decoded.payload(), frame.payload());
        }
    }

    #[test]
    fn empty_payload_round_trip() {
        let frame = Frame::new(Vec::new()).unwrap();
        let bits = frame.to_bits(8);
        assert_eq!(bits.len(), 8 + 8 + 16);
        assert_eq!(Frame::from_bits(&bits, 8).unwrap().payload(), &[] as &[u8]);
    }

    #[test]
    fn max_payload_round_trip() {
        let frame = Frame::new(vec![0x5A; MAX_PAYLOAD]).unwrap();
        let bits = frame.to_bits(8);
        assert_eq!(Frame::from_bits(&bits, 8).unwrap().payload().len(), 126);
    }

    #[test]
    fn oversized_payload_rejected() {
        assert!(matches!(
            Frame::new(vec![0; 127]),
            Err(CbmaError::PayloadTooLarge {
                actual: 127,
                max: 126
            })
        ));
    }

    #[test]
    fn preamble_byte_is_0xaa() {
        // The default 8-bit preamble must equal {10101010}.
        assert_eq!(preamble_pattern(8).to_string(), "10101010");
        let frame = Frame::new(vec![]).unwrap();
        let bits = frame.to_bits(8);
        let first_byte: Bits = (0..8).map(|i| bits[i]).collect();
        assert_eq!(first_byte.to_bytes_msb().unwrap(), vec![0xAA]);
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let frame = Frame::new(b"data".to_vec()).unwrap();
        let bits = frame.to_bits(8);
        // Flip one payload bit (after preamble + length byte).
        let mut raw: Vec<u8> = bits.iter().collect();
        raw[8 + 8 + 3] ^= 1;
        let corrupted = Bits::from_slice(&raw).unwrap();
        assert!(matches!(
            Frame::from_bits(&corrupted, 8),
            Err(CbmaError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn corrupted_preamble_is_malformed() {
        let frame = Frame::new(b"x".to_vec()).unwrap();
        let bits = frame.to_bits(8);
        let mut raw: Vec<u8> = bits.iter().collect();
        raw[0] ^= 1;
        let corrupted = Bits::from_slice(&raw).unwrap();
        assert!(matches!(
            Frame::from_bits(&corrupted, 8),
            Err(CbmaError::MalformedFrame(_))
        ));
    }

    #[test]
    fn truncated_frame_is_malformed() {
        let frame = Frame::new(b"abcdef".to_vec()).unwrap();
        let bits = frame.to_bits(8);
        let truncated: Bits = (0..bits.len() - 10).map(|i| bits[i]).collect();
        assert!(matches!(
            Frame::from_bits(&truncated, 8),
            Err(CbmaError::MalformedFrame(_))
        ));
    }

    #[test]
    fn inconsistent_length_field_is_malformed() {
        // Claim 126 bytes of payload but provide only a short body.
        let mut bits = preamble_pattern(8);
        bits.extend_bits(&Bits::from_bytes_msb(&[126, 0, 0, 0, 0]));
        assert!(matches!(
            Frame::from_bits(&bits, 8),
            Err(CbmaError::MalformedFrame(_))
        ));
    }

    #[test]
    fn trailing_bits_are_ignored() {
        // A receiver hands the parser a window that may extend past the
        // frame; parsing must succeed using the length field.
        let frame = Frame::new(b"tail test".to_vec()).unwrap();
        let mut bits = frame.to_bits(8);
        bits.extend([1u8, 0, 1, 1, 0]);
        assert_eq!(Frame::from_bits(&bits, 8).unwrap(), frame);
    }
}
