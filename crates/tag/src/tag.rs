//! The tag state machine.
//!
//! A [`Tag`] owns everything a physical CBMA tag owns: its identity, its
//! position in the room, its assigned PN code, its current impedance state
//! (the power-control actuator), and the ACK bookkeeping that drives
//! Algorithm 1. The full transmit path — frame → spread → OOK envelope —
//! is exposed as one call so the simulation engine and the examples stay
//! simple.

use cbma_codes::PnCode;
use cbma_types::geometry::Point;
use cbma_types::{Bits, Result};

use crate::encoder::spread;
use crate::frame::Frame;
use crate::impedance::ImpedanceState;
use crate::modulator::ook_envelope;
use crate::phy::PhyProfile;

/// One backscatter tag.
#[derive(Debug, Clone)]
pub struct Tag {
    id: u32,
    position: Point,
    code: PnCode,
    impedance: ImpedanceState,
    packets_sent: u64,
    acks_received: u64,
}

impl Tag {
    /// Creates a tag with the strongest impedance state selected (tags
    /// boot at full backscatter power; power control adapts from there).
    pub fn new(id: u32, position: Point, code: PnCode) -> Tag {
        Tag {
            id,
            position,
            code,
            impedance: ImpedanceState::Open,
            packets_sent: 0,
            acks_received: 0,
        }
    }

    /// The tag identifier (also indexes its PN code in scenario tables).
    #[inline]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Current position.
    #[inline]
    pub fn position(&self) -> Point {
        self.position
    }

    /// Moves the tag (node selection relocates "bad" tags, §V-C).
    pub fn set_position(&mut self, position: Point) {
        self.position = position;
    }

    /// The assigned spreading code.
    #[inline]
    pub fn code(&self) -> &PnCode {
        &self.code
    }

    /// Current impedance state.
    #[inline]
    pub fn impedance(&self) -> ImpedanceState {
        self.impedance
    }

    /// Sets the impedance state directly.
    pub fn set_impedance(&mut self, state: ImpedanceState) {
        self.impedance = state;
    }

    /// Advances the impedance cyclically — Algorithm 1's
    /// `Z ← Z + 1 (wrapping at Z_max)` actuation.
    pub fn step_impedance(&mut self) {
        self.impedance = self.impedance.next_cyclic();
    }

    /// Builds the spread chip sequence for a frame.
    ///
    /// # Errors
    ///
    /// Propagates frame construction errors (oversized payload).
    pub fn encode(&self, payload: Vec<u8>, phy: &PhyProfile) -> Result<Bits> {
        let frame = Frame::new(payload)?;
        Ok(spread(&frame.to_bits(phy.preamble_bits), &self.code))
    }

    /// Full transmit path: frame → spread → OOK envelope at the receiver
    /// sample rate. Also counts the packet as sent.
    ///
    /// # Errors
    ///
    /// Propagates frame construction errors.
    pub fn transmit(&mut self, payload: Vec<u8>, phy: &PhyProfile) -> Result<Vec<f64>> {
        let chips = self.encode(payload, phy)?;
        self.packets_sent += 1;
        Ok(ook_envelope(&chips, phy.samples_per_chip()))
    }

    /// Records an ACK from the receiver for this tag.
    pub fn record_ack(&mut self) {
        self.acks_received += 1;
    }

    /// Packets transmitted since the last stats reset.
    #[inline]
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }

    /// ACKs received since the last stats reset.
    #[inline]
    pub fn acks_received(&self) -> u64 {
        self.acks_received
    }

    /// The ACK ratio Algorithm 1 thresholds (ACKᵢ / m). 0 when nothing has
    /// been sent.
    pub fn ack_ratio(&self) -> f64 {
        if self.packets_sent == 0 {
            0.0
        } else {
            self.acks_received as f64 / self.packets_sent as f64
        }
    }

    /// Clears the ACK statistics (start of a power-control round).
    pub fn reset_stats(&mut self) {
        self.packets_sent = 0;
        self.acks_received = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbma_codes::{CodeFamily, GoldFamily};

    fn make_tag() -> Tag {
        let code = GoldFamily::new(5).unwrap().code(2).unwrap();
        Tag::new(2, Point::new(0.3, 0.7), code)
    }

    #[test]
    fn new_tag_boots_at_full_power() {
        let tag = make_tag();
        assert_eq!(tag.impedance(), ImpedanceState::Open);
        assert_eq!(tag.packets_sent(), 0);
        assert_eq!(tag.ack_ratio(), 0.0);
    }

    #[test]
    fn encode_length_matches_frame_and_code() {
        let tag = make_tag();
        let phy = PhyProfile::paper_default();
        let chips = tag.encode(vec![0xAB; 4], &phy).unwrap();
        // Frame bits: 8 preamble + 8 length + 32 payload + 16 crc = 64.
        assert_eq!(chips.len(), 64 * 31);
    }

    #[test]
    fn transmit_produces_envelope_and_counts() {
        let mut tag = make_tag();
        let phy = PhyProfile::paper_default();
        let env = tag.transmit(vec![1, 2], &phy).unwrap();
        assert_eq!(env.len(), (8 + 8 + 16 + 16) * 31 * 8);
        assert_eq!(tag.packets_sent(), 1);
        assert!(env.iter().all(|&s| s == 0.0 || s == 1.0));
    }

    #[test]
    fn ack_ratio_tracks_feedback() {
        let mut tag = make_tag();
        let phy = PhyProfile::paper_default();
        for _ in 0..4 {
            tag.transmit(vec![0], &phy).unwrap();
        }
        tag.record_ack();
        tag.record_ack();
        tag.record_ack();
        assert!((tag.ack_ratio() - 0.75).abs() < 1e-12);
        tag.reset_stats();
        assert_eq!(tag.ack_ratio(), 0.0);
        assert_eq!(tag.acks_received(), 0);
    }

    #[test]
    fn impedance_stepping_cycles() {
        let mut tag = make_tag();
        let start = tag.impedance();
        for _ in 0..4 {
            tag.step_impedance();
        }
        assert_eq!(tag.impedance(), start);
    }

    #[test]
    fn position_can_be_updated() {
        let mut tag = make_tag();
        tag.set_position(Point::new(-1.0, 2.0));
        assert_eq!(tag.position(), Point::new(-1.0, 2.0));
    }

    #[test]
    fn oversized_payload_propagates_error() {
        let mut tag = make_tag();
        let phy = PhyProfile::paper_default();
        assert!(tag.transmit(vec![0; 127], &phy).is_err());
        assert_eq!(tag.packets_sent(), 0, "failed transmit must not count");
    }
}
