//! The air-interface profile shared by tags and the receiver.
//!
//! Captures the physical-layer constants of §III/§VI: the tag's chip
//! (symbol) rate — 1 symbol per µs in the paper's configuration, swept up
//! to 5 Mbps in Fig. 9(a) — the receiver's fixed sampling capacity (which
//! is why high bitrates leave "too few sampling points" per symbol), and
//! the preamble length (swept in Fig. 8(c)).

use serde::{Deserialize, Serialize};

use cbma_types::units::{Hertz, Seconds};
use cbma_types::{CbmaError, Result};

use crate::frame::DEFAULT_PREAMBLE_BITS;

/// Physical-layer configuration shared by every node in a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhyProfile {
    /// Tag chip (OOK symbol) rate. The paper's default symbol time is
    /// 1 µs → 1 Mcps.
    pub chip_rate: Hertz,
    /// Receiver sampling rate — a fixed hardware capacity (§VII-B.1
    /// "the sampling capacity of the receiver is limited").
    pub sample_rate: Hertz,
    /// Preamble length in bits.
    pub preamble_bits: usize,
}

impl PhyProfile {
    /// The paper's baseline: 1 µs symbols, an 8 Msps receiver, one-byte
    /// preamble.
    pub fn paper_default() -> PhyProfile {
        PhyProfile {
            chip_rate: Hertz::from_mhz(1.0),
            sample_rate: Hertz::from_mhz(8.0),
            preamble_bits: DEFAULT_PREAMBLE_BITS,
        }
    }

    /// Validates the profile.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::InvalidConfig`] when rates are non-positive,
    /// the chip rate exceeds the sample rate, or the preamble is empty.
    pub fn validate(&self) -> Result<()> {
        if self.chip_rate.get() <= 0.0 || self.sample_rate.get() <= 0.0 {
            return Err(CbmaError::InvalidConfig(
                "chip and sample rates must be positive".into(),
            ));
        }
        if self.chip_rate.get() > self.sample_rate.get() {
            return Err(CbmaError::InvalidConfig(format!(
                "chip rate {} exceeds receiver sample rate {}",
                self.chip_rate, self.sample_rate
            )));
        }
        if self.preamble_bits == 0 {
            return Err(CbmaError::InvalidConfig(
                "preamble must be at least one bit".into(),
            ));
        }
        Ok(())
    }

    /// Samples per chip at the receiver: ⌊f_s / f_chip⌋, at least 1.
    /// High chip rates shrink this — the Fig. 9(a) degradation mechanism.
    pub fn samples_per_chip(&self) -> usize {
        ((self.sample_rate.get() / self.chip_rate.get()).floor() as usize).max(1)
    }

    /// One chip duration.
    pub fn chip_duration(&self) -> Seconds {
        self.chip_rate.period()
    }

    /// The tag's information bit rate for a given spreading factor.
    pub fn info_bit_rate(&self, spreading_factor: usize) -> Hertz {
        Hertz::new(self.chip_rate.get() / spreading_factor.max(1) as f64)
    }

    /// Returns a copy with a different chip rate (the Fig. 9(a) sweep).
    pub fn with_chip_rate(mut self, chip_rate: Hertz) -> PhyProfile {
        self.chip_rate = chip_rate;
        self
    }

    /// Returns a copy with a different preamble length (Fig. 8(c) sweep).
    pub fn with_preamble_bits(mut self, bits: usize) -> PhyProfile {
        self.preamble_bits = bits;
        self
    }
}

impl Default for PhyProfile {
    fn default() -> PhyProfile {
        PhyProfile::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let phy = PhyProfile::paper_default();
        phy.validate().unwrap();
        assert_eq!(phy.samples_per_chip(), 8);
        assert!((phy.chip_duration().as_micros() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn samples_per_chip_shrinks_with_bitrate() {
        // Fig. 9(a): 250 kbps → 32 samples, 5 Mbps → 1 sample.
        let phy = PhyProfile::paper_default();
        assert_eq!(phy.with_chip_rate(Hertz::new(250e3)).samples_per_chip(), 32);
        assert_eq!(
            phy.with_chip_rate(Hertz::from_mhz(2.0)).samples_per_chip(),
            4
        );
        assert_eq!(
            phy.with_chip_rate(Hertz::from_mhz(5.0)).samples_per_chip(),
            1
        );
    }

    #[test]
    fn info_bit_rate_divides_by_spreading_factor() {
        let phy = PhyProfile::paper_default();
        let r = phy.info_bit_rate(31);
        assert!((r.get() - 1e6 / 31.0).abs() < 1.0);
        assert_eq!(phy.info_bit_rate(0).get(), 1e6); // clamped divisor
    }

    #[test]
    fn invalid_profiles_are_rejected() {
        let phy = PhyProfile::paper_default();
        assert!(phy.with_chip_rate(Hertz::new(0.0)).validate().is_err());
        assert!(phy
            .with_chip_rate(Hertz::from_mhz(16.0))
            .validate()
            .is_err());
        assert!(phy.with_preamble_bits(0).validate().is_err());
    }

    #[test]
    fn builders_do_not_touch_other_fields() {
        let phy = PhyProfile::paper_default()
            .with_chip_rate(Hertz::from_mhz(2.0))
            .with_preamble_bits(64);
        assert_eq!(phy.sample_rate, Hertz::from_mhz(8.0));
        assert_eq!(phy.preamble_bits, 64);
        assert_eq!(phy.chip_rate, Hertz::from_mhz(2.0));
    }
}
