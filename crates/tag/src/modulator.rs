//! On/Off-keying chip modulation.
//!
//! §V-A: to transmit a coded `1` the tag enables the Δf square wave for
//! one symbol period (the antenna toggles → energy appears at f_c ± Δf);
//! for a `0` it "keeps silent and does nothing". After the receiver tunes
//! to f_c − Δf, the complex-baseband image of that behaviour is simply an
//! envelope that is 1 during reflecting chips and 0 during absorbing ones
//! (the square wave's first-harmonic factor 4/π is folded into the link's
//! α, see DESIGN.md). This module produces that envelope at the receiver
//! sample rate.

use cbma_dsp::resample::upsample_repeat;
use cbma_types::Bits;

/// Expands a chip sequence to its OOK envelope: chip `1` → `samples_per_chip`
/// ones, chip `0` → zeros.
///
/// # Panics
///
/// Panics if `samples_per_chip` is zero.
pub fn ook_envelope(chips: &Bits, samples_per_chip: usize) -> Vec<f64> {
    assert!(samples_per_chip > 0, "need at least one sample per chip");
    let per_chip: Vec<f64> = chips.iter().map(f64::from).collect();
    upsample_repeat(&per_chip, samples_per_chip)
}

/// Fraction of time the tag reflects (its RF duty cycle) for a chip
/// sequence — relevant to tag energy budgeting.
pub fn reflect_duty(chips: &Bits) -> f64 {
    if chips.is_empty() {
        return 0.0;
    }
    chips.count_ones() as f64 / chips.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_expands_chips() {
        let chips = Bits::from_str("101").unwrap();
        let env = ook_envelope(&chips, 3);
        assert_eq!(env, vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn single_sample_per_chip() {
        let chips = Bits::from_str("0110").unwrap();
        assert_eq!(ook_envelope(&chips, 1), vec![0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn empty_chips_yield_empty_envelope() {
        assert!(ook_envelope(&Bits::new(), 4).is_empty());
    }

    #[test]
    fn envelope_is_binary() {
        let chips = Bits::from_str("1001101").unwrap();
        assert!(ook_envelope(&chips, 5)
            .iter()
            .all(|&s| s == 0.0 || s == 1.0));
    }

    #[test]
    fn duty_cycle() {
        assert_eq!(reflect_duty(&Bits::from_str("1010").unwrap()), 0.5);
        assert_eq!(reflect_duty(&Bits::from_str("1111").unwrap()), 1.0);
        assert_eq!(reflect_duty(&Bits::new()), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_oversampling_panics() {
        ook_envelope(&Bits::from_str("1").unwrap(), 0);
    }
}
