//! Property-based tests for framing, CRC, impedance and energy.

use cbma_tag::crc::crc16;
use cbma_tag::energy::TagPowerModel;
use cbma_tag::frame::{preamble_pattern, Frame, MAX_PAYLOAD};
use cbma_tag::impedance::{ImpedanceBank, ImpedanceState};
use cbma_tag::modulator::ook_envelope;
use cbma_tag::phy::PhyProfile;
use cbma_types::units::{Dbm, Hertz};
use cbma_types::Bits;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Frames round-trip for every payload and preamble length.
    #[test]
    fn frame_round_trip(
        payload in proptest::collection::vec(any::<u8>(), 0..=MAX_PAYLOAD),
        preamble in prop_oneof![Just(4usize), Just(8), Just(16), Just(32), Just(64)],
    ) {
        let frame = Frame::new(payload.clone()).unwrap();
        let bits = frame.to_bits(preamble);
        prop_assert_eq!(bits.len(), frame.bit_len(preamble));
        let decoded = Frame::from_bits(&bits, preamble).unwrap();
        prop_assert_eq!(decoded.payload(), payload.as_slice());
    }

    /// CRC-16 changes for any single-bit payload corruption.
    #[test]
    fn crc_detects_any_single_bit_flip(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        byte in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut corrupted = payload.clone();
        let idx = byte % corrupted.len();
        corrupted[idx] ^= 1 << bit;
        prop_assert_ne!(crc16(&payload), crc16(&corrupted));
    }

    /// The OOK envelope is exactly the chips stretched by the sample
    /// factor and contains only zeros and ones.
    #[test]
    fn envelope_matches_chips(
        chips in proptest::collection::vec(0u8..2, 1..128),
        spc in 1usize..12,
    ) {
        let bits = Bits::from_slice(&chips).unwrap();
        let env = ook_envelope(&bits, spc);
        prop_assert_eq!(env.len(), chips.len() * spc);
        for (i, &e) in env.iter().enumerate() {
            prop_assert_eq!(e, f64::from(chips[i / spc]));
        }
    }

    /// Preamble patterns always alternate starting from 1.
    #[test]
    fn preamble_alternates(bits in 1usize..128) {
        let p = preamble_pattern(bits);
        prop_assert_eq!(p.len(), bits);
        for i in 0..bits {
            prop_assert_eq!(p[i], if i % 2 == 0 { 1 } else { 0 });
        }
    }

    /// Reflection coefficients of the impedance bank stay on the unit
    /// circle for any carrier in the UHF–microwave range, and the cyclic
    /// ordering of |ΔΓ| is preserved at 2.4 GHz as well as 2 GHz.
    #[test]
    fn impedance_bank_is_physical(ghz in 0.5f64..6.0) {
        let bank = ImpedanceBank::new(Hertz::from_ghz(ghz));
        for state in ImpedanceState::ALL {
            let gamma = bank.gamma(state);
            prop_assert!((gamma.abs() - 1.0).abs() < 1e-9, "lossless load left the unit circle");
            let dg = bank.delta_gamma(state);
            prop_assert!((0.0..=2.0 + 1e-9).contains(&dg));
        }
    }

    /// Frame energy grows monotonically with payload size and never
    /// exceeds the all-on bound.
    #[test]
    fn frame_energy_is_sane(
        small in 0usize..32,
        extra in 1usize..32,
    ) {
        let model = TagPowerModel::paper_default();
        let phy = PhyProfile::paper_default();
        let chips_small: Bits = (0..(small + 1) * 16).map(|i| (i % 2) as u8).collect();
        let chips_large: Bits = (0..(small + extra + 1) * 16).map(|i| (i % 2) as u8).collect();
        let e_small = model.frame_energy(&chips_small, &phy);
        let e_large = model.frame_energy(&chips_large, &phy);
        prop_assert!(e_large > e_small);
        // Bound: all-on frame of the same length.
        let duration = chips_large.len() as f64 / phy.chip_rate.get();
        prop_assert!(e_large <= duration * (model.controller_w + model.reflect_w) + 1e-18);
    }

    /// Sustainable duty is monotone in the incident power.
    #[test]
    fn duty_is_monotone_in_power(p1 in -40.0f64..0.0, delta in 0.1f64..20.0) {
        let model = TagPowerModel::paper_default();
        let phy = PhyProfile::paper_default();
        let chips: Bits = (0..512u32).map(|i| (i % 2) as u8).collect();
        let low = model.sustainable_duty(Dbm::new(p1), &chips, &phy);
        let high = model.sustainable_duty(Dbm::new(p1 + delta), &chips, &phy);
        prop_assert!(high >= low - 1e-12);
    }
}
