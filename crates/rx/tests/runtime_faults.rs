//! Failure-path tests for the streaming runtime: a panicking stage must
//! tear the flowgraph down with a clean, named error (never a hang), a
//! stalled sink must translate into bounded backpressure (never
//! unbounded buffering), and an uneventful run must drain every capture
//! deterministically.

use std::time::{Duration, Instant};

use cbma_codes::{CodeFamily, GoldFamily, PnCode};
use cbma_rx::runtime::{CaptureSource, RuntimeConfig, RxFlowgraph, Scheduler, StageKind};
use cbma_rx::ReceiverConfig;
use cbma_tag::phy::PhyProfile;
use cbma_types::Iq;

fn codes() -> Vec<PnCode> {
    GoldFamily::new(5).unwrap().codes(2).unwrap()
}

fn flowgraph(scheduler: Scheduler) -> RxFlowgraph {
    let runtime = RuntimeConfig {
        block_size: 512,
        ring_capacity: 2,
        scheduler,
    };
    RxFlowgraph::new(
        codes(),
        PhyProfile::paper_default(),
        ReceiverConfig::default(),
        runtime,
    )
}

fn silence_captures(n: usize) -> Vec<Vec<Iq>> {
    (0..n).map(|_| vec![Iq::ZERO; 1500]).collect()
}

#[test]
fn a_panicking_stage_fails_the_run_with_its_name() {
    // Every stage, panicking mid-stream, under every threaded scheduler:
    // the run must return (no hang — a worker pool with parked idle
    // workers must wake them for teardown) with an error naming the
    // faulty stage, and the already-buffered captures must not deadlock
    // the teardown.
    let schedulers = [
        Scheduler::ThreadPerStage,
        Scheduler::WorkStealing { workers: 1, pin: false },
        Scheduler::WorkStealing { workers: 4, pin: false },
    ];
    for scheduler in schedulers {
        for stage in [
            StageKind::Sync,
            StageKind::Detect,
            StageKind::Decode,
            StageKind::Sic,
        ] {
            let mut flow = flowgraph(scheduler);
            flow.inject_panic(stage, 2);
            let source = CaptureSource::single_stream(512, silence_captures(6));
            let started = Instant::now();
            let err = flow.run(source).expect_err("injected panic must surface");
            assert!(
                err.message.contains(stage.name()),
                "{scheduler:?} {stage:?}: error {:?} does not name the stage",
                err.message
            );
            assert!(
                err.message.contains("injected fault"),
                "{scheduler:?} {stage:?}: error {:?} lost the panic payload",
                err.message
            );
            assert!(
                started.elapsed() < Duration::from_secs(30),
                "{scheduler:?} {stage:?}: teardown took implausibly long"
            );
        }
    }
}

#[test]
fn inline_scheduler_propagates_the_panic() {
    // Inline runs on the caller's thread; the panic is the caller's to
    // observe directly rather than a FlowgraphError.
    let result = std::panic::catch_unwind(move || {
        let mut flow = flowgraph(Scheduler::Inline);
        flow.inject_panic(StageKind::Decode, 1);
        let source = CaptureSource::single_stream(512, silence_captures(3));
        flow.run(source)
    });
    let payload = result.expect_err("inline panics propagate");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("decode"), "payload {msg:?}");
}

#[test]
fn a_failed_flowgraph_can_run_again() {
    // Injected faults are armed for exactly one run: after the failed
    // run, the *same* flowgraph drains normally, proving teardown left
    // no poisoned rings, stuck workers, or stale sync state behind.
    let schedulers = [
        Scheduler::ThreadPerStage,
        Scheduler::WorkStealing { workers: 2, pin: false },
    ];
    for scheduler in schedulers {
        let mut flow = flowgraph(scheduler);
        flow.inject_panic(StageKind::Detect, 0);
        let source = CaptureSource::single_stream(512, silence_captures(2));
        flow.run(source)
            .expect_err(&format!("{scheduler:?}: first run fails"));

        let source = CaptureSource::single_stream(512, silence_captures(2));
        let output = flow
            .run(source)
            .unwrap_or_else(|e| panic!("{scheduler:?}: rerun after failure: {e}"));
        assert_eq!(output.results.len(), 2, "{scheduler:?}");
    }
}

#[test]
fn a_stalled_sink_applies_backpressure_not_buffering() {
    // The sink sleeps on every result. The source would love to race
    // ahead, but each ring holds at most `ring_capacity` entries, so
    // total in-flight work stays bounded no matter how slow the
    // downstream is — that is the whole point of bounded rings. Under
    // work-stealing the stall additionally must not *block* a worker:
    // the stage task just goes unready until the sink drains.
    let schedulers = [
        Scheduler::ThreadPerStage,
        Scheduler::WorkStealing { workers: 2, pin: false },
    ];
    for scheduler in schedulers {
        let captures = 8;
        let mut flow = flowgraph(scheduler);
        let source = CaptureSource::single_stream(512, silence_captures(captures));
        let mut seen = Vec::new();
        let stats = flow
            .run_with_sink(source, |result| {
                std::thread::sleep(Duration::from_millis(15));
                seen.push(result.seq);
            })
            .expect("stalled sink is slow, not broken");
        assert_eq!(seen, (0..captures as u64).collect::<Vec<_>>(), "{scheduler:?}");
        assert_eq!(stats.captures, captures as u64, "{scheduler:?}");
        let capacity = flow.runtime_config().ring_capacity;
        assert_eq!(stats.ring_max_depth.len(), 5, "{scheduler:?}");
        for (i, &depth) in stats.ring_max_depth.iter().enumerate() {
            assert!(
                depth <= capacity,
                "{scheduler:?}: ring {i} reached depth {depth} > capacity {capacity}"
            );
        }
        // Backpressure reached all the way upstream: with a stalled sink
        // the rings actually fill.
        assert!(
            stats.ring_max_depth.iter().any(|&d| d > 0),
            "{scheduler:?}: no ring ever held an item: {:?}",
            stats.ring_max_depth
        );
    }
}

#[test]
fn shutdown_drains_every_capture_in_order() {
    // An uneventful run is a clean shutdown: every capture's result
    // arrives exactly once, in submission order, and the block count
    // matches the source's chopping.
    let captures = silence_captures(5);
    let blocks_expected: u64 = captures
        .iter()
        .map(|c| c.len().div_ceil(512) as u64)
        .sum();
    let schedulers = [
        Scheduler::Inline,
        Scheduler::ThreadPerStage,
        Scheduler::WorkStealing { workers: 2, pin: false },
    ];
    for scheduler in schedulers {
        let mut flow = flowgraph(scheduler);
        let source = CaptureSource::single_stream(512, captures.clone());
        let output = flow.run(source).unwrap();
        let seqs: Vec<u64> = output.results.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..5).collect::<Vec<_>>(), "{scheduler:?}");
        assert_eq!(output.stats.captures, 5, "{scheduler:?}");
        assert_eq!(output.stats.blocks, blocks_expected, "{scheduler:?}");
    }
}
