//! Block-boundary equivalence of the streaming runtime and the
//! monolithic receiver.
//!
//! The streaming flowgraph must be a pure re-plumbing of
//! `Receiver::receive`: the frame-sync stage feeds the same per-sample
//! energy detector, the detect stage walks the same overlap-save
//! correlator with carried state, and decode/SIC run the identical code
//! on the assembled capture. So for *every* block size — one sample, a
//! prime, a power of two, the whole capture — and for *every* scheduler,
//! the decisions must be identical: frame detection, detected users,
//! start offsets, decoded payload bytes, SIC recoveries, the ACK.
//! `RxReport`'s equality deliberately skips wall-clock fields, so
//! whole-report `==` is exactly the decision-level comparison.

use cbma_codes::{CodeFamily, GoldFamily, PnCode};
use cbma_rx::runtime::{CaptureSource, RuntimeConfig, RxFlowgraph, Scheduler};
use cbma_rx::{Receiver, ReceiverConfig, RxReport};
use cbma_tag::phy::PhyProfile;
use cbma_tag::Tag;
use cbma_types::geometry::Point;
use cbma_types::Iq;

/// A lead of silence, one tag's frame at a phase rotation, trailing pad.
fn capture_for(codes: &[PnCode], phy: &PhyProfile, tag_idx: usize, lead: usize) -> Vec<Iq> {
    let mut tag = Tag::new(tag_idx as u32, Point::ORIGIN, codes[tag_idx].clone());
    let env = tag
        .transmit(format!("streaming payload {tag_idx}").into_bytes(), phy)
        .unwrap();
    let mut buf = vec![Iq::ZERO; lead];
    buf.extend(env.iter().map(|&e| Iq::from_polar(0.01 * e, 0.3 + 0.2 * tag_idx as f64)));
    buf.extend(vec![Iq::ZERO; 64]);
    buf
}

/// Two tags superposed in one capture (a collision round), with the
/// second attenuated so SIC has something to recover when enabled.
fn collision_capture(codes: &[PnCode], phy: &PhyProfile) -> Vec<Iq> {
    let a = capture_for(codes, phy, 0, 400);
    let b: Vec<Iq> = capture_for(codes, phy, 1, 400)
        .into_iter()
        .map(|s| s * 0.35)
        .collect();
    let n = a.len().max(b.len());
    (0..n)
        .map(|i| {
            a.get(i).copied().unwrap_or(Iq::ZERO) + b.get(i).copied().unwrap_or(Iq::ZERO)
        })
        .collect()
}

/// The shared capture set: single-tag frames at different leads, a
/// collision, pure silence, sub-threshold ripple, a capture too short to
/// hold a reference window, and an empty capture.
fn capture_set(codes: &[PnCode], phy: &PhyProfile) -> Vec<Vec<Iq>> {
    vec![
        capture_for(codes, phy, 0, 300),
        collision_capture(codes, phy),
        vec![Iq::ZERO; 2000],
        capture_for(codes, phy, 2, 420),
        (0..2400)
            .map(|i| Iq::new(1e-6 * (1.0 + 0.05 * (i as f64 * 0.37).sin()), 0.0))
            .collect(),
        vec![Iq::ZERO; 40],
        Vec::new(),
        capture_for(codes, phy, 1, 356),
    ]
}

fn monolithic_reports(
    codes: &[PnCode],
    phy: PhyProfile,
    config: ReceiverConfig,
    captures: &[Vec<Iq>],
) -> Vec<RxReport> {
    let mut rx = Receiver::new(codes.to_vec(), phy, config);
    captures.iter().map(|c| rx.receive(c)).collect()
}

fn assert_streaming_matches(config: ReceiverConfig, label: &str) {
    let phy = PhyProfile::paper_default();
    let codes = GoldFamily::new(5).unwrap().codes(3).unwrap();
    let captures = capture_set(&codes, &phy);
    let expected = monolithic_reports(&codes, phy, config, &captures);
    let whole: usize = captures.iter().map(Vec::len).max().unwrap();

    let schedulers = [
        Scheduler::Inline,
        Scheduler::ThreadPerStage,
        // Work-stealing at a degenerate pool, a small pool, a pool wider
        // than the stage count, and auto-sized (one worker per CPU).
        Scheduler::WorkStealing { workers: 1, pin: false },
        Scheduler::WorkStealing { workers: 2, pin: false },
        Scheduler::WorkStealing { workers: 4, pin: false },
        Scheduler::WorkStealing { workers: 0, pin: false },
    ];
    for scheduler in schedulers {
        for block_size in [1usize, 257, 1024, whole] {
            let runtime = RuntimeConfig {
                block_size,
                ring_capacity: 2,
                scheduler,
            };
            let mut flow = RxFlowgraph::new(codes.clone(), phy, config, runtime);
            let source = CaptureSource::single_stream(block_size, captures.clone());
            let output = flow
                .run(source)
                .unwrap_or_else(|e| panic!("{label} {scheduler:?} block={block_size}: {e}"));
            assert_eq!(output.results.len(), expected.len());
            for (i, (result, want)) in output.results.iter().zip(&expected).enumerate() {
                assert_eq!(result.stream, 0);
                assert_eq!(result.seq, i as u64);
                assert_eq!(
                    result.report, *want,
                    "{label} {scheduler:?} block={block_size}: capture {i} diverged"
                );
            }
        }
    }
}

#[test]
fn streaming_decisions_match_monolithic_receive() {
    assert_streaming_matches(ReceiverConfig::default(), "default");
}

#[test]
fn streaming_decisions_match_with_sic_enabled() {
    let config = ReceiverConfig {
        sic_passes: 2,
        ..ReceiverConfig::default()
    };
    assert_streaming_matches(config, "sic");
}

#[test]
fn multi_stream_interleaving_preserves_per_stream_order_and_decisions() {
    // Blocks of different streams interleave through the pipeline; each
    // stream's captures must still come out in seq order with the same
    // decisions as a dedicated monolithic receiver per stream.
    let phy = PhyProfile::paper_default();
    let codes = GoldFamily::new(5).unwrap().codes(3).unwrap();
    let config = ReceiverConfig::default();
    let per_stream: Vec<Vec<Vec<Iq>>> = vec![
        vec![
            capture_for(&codes, &phy, 0, 300),
            vec![Iq::ZERO; 1500],
            capture_for(&codes, &phy, 1, 410),
        ],
        vec![collision_capture(&codes, &phy), capture_for(&codes, &phy, 2, 350)],
    ];
    let expected: Vec<Vec<RxReport>> = per_stream
        .iter()
        .map(|caps| monolithic_reports(&codes, phy, config, caps))
        .collect();

    let schedulers = [
        Scheduler::ThreadPerStage,
        Scheduler::WorkStealing { workers: 1, pin: false },
        Scheduler::WorkStealing { workers: 3, pin: false },
    ];
    for scheduler in schedulers {
        let mut source = CaptureSource::new(389);
        for (stream, caps) in per_stream.iter().enumerate() {
            for cap in caps {
                source.push(stream, cap.clone());
            }
        }
        let runtime = RuntimeConfig {
            block_size: 389,
            ring_capacity: 2,
            scheduler,
        };
        let mut flow = RxFlowgraph::new(codes.clone(), phy, config, runtime);
        let output = flow.run(source).unwrap();

        let mut got: Vec<Vec<RxReport>> = vec![Vec::new(); per_stream.len()];
        let mut next_seq = vec![0u64; per_stream.len()];
        for result in output.results {
            assert_eq!(
                result.seq, next_seq[result.stream],
                "{scheduler:?}: in-order emission"
            );
            next_seq[result.stream] += 1;
            got[result.stream].push(result.report);
        }
        assert_eq!(got, expected, "{scheduler:?}");
    }
}

#[test]
fn pinned_workers_match_unpinned_decisions() {
    // CPU affinity is a placement hint; it must never change a decision.
    // (On machines with fewer CPUs than workers the pin silently wraps —
    // also decision-neutral.)
    let phy = PhyProfile::paper_default();
    let codes = GoldFamily::new(5).unwrap().codes(3).unwrap();
    let config = ReceiverConfig::default();
    let captures = capture_set(&codes, &phy);

    let mut reports = Vec::new();
    for pin in [false, true] {
        let runtime = RuntimeConfig {
            block_size: 701,
            ring_capacity: 2,
            scheduler: Scheduler::WorkStealing { workers: 2, pin },
        };
        let mut flow = RxFlowgraph::new(codes.clone(), phy, config, runtime);
        let source = CaptureSource::single_stream(701, captures.clone());
        let output = flow.run(source).unwrap();
        reports.push(
            output
                .results
                .into_iter()
                .map(|r| (r.stream, r.seq, r.report))
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(reports[0], reports[1], "pin changed a decision");
}

#[test]
fn flowgraph_reuse_across_runs_matches_fresh_state() {
    // A second `run` on the same flowgraph must see no leftover state
    // from the first (sync streams, correlator carry, candidate lists).
    let phy = PhyProfile::paper_default();
    let codes = GoldFamily::new(5).unwrap().codes(3).unwrap();
    let config = ReceiverConfig::default();
    let captures = capture_set(&codes, &phy);
    let expected = monolithic_reports(&codes, phy, config, &captures);

    let runtime = RuntimeConfig {
        block_size: 512,
        ring_capacity: 2,
        scheduler: Scheduler::Inline,
    };
    let mut flow = RxFlowgraph::new(codes, phy, config, runtime);
    for pass in 0..2 {
        let source = CaptureSource::single_stream(512, captures.clone());
        let output = flow.run(source).unwrap();
        let got: Vec<RxReport> = output.results.into_iter().map(|r| r.report).collect();
        assert_eq!(got, expected, "pass {pass}");
    }
}
