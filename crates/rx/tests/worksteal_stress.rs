//! Seeded stress tests for the work-stealing scheduler.
//!
//! Loom/shuttle-style exhaustive interleaving exploration is not
//! available offline, so these tests do the next-best thing: a fixed
//! seed drives both the capture mix and a jittered sink, perturbing the
//! scheduler's timing run-to-run-deterministically while the decisions
//! are compared against `Scheduler::Inline` (itself equivalence-locked
//! to the monolithic receiver by `streaming_equivalence.rs`). CI runs
//! this suite with `--test-threads=1` so the jitter exercises the pool
//! rather than fighting sibling tests for cores.

use std::time::Duration;

use cbma_codes::{CodeFamily, GoldFamily, PnCode};
use cbma_obs::{MetricsRegistry, Tracer};
use cbma_rx::runtime::{CaptureSource, RuntimeConfig, RxFlowgraph, Scheduler};
use cbma_rx::{ReceiverConfig, RxReport};
use cbma_tag::phy::PhyProfile;
use cbma_tag::Tag;
use cbma_types::geometry::Point;
use cbma_types::Iq;

/// Deterministic PRNG (xorshift64*) so every run sees the same "random"
/// capture mix and sink jitter.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn tag_capture(codes: &[PnCode], phy: &PhyProfile, tag_idx: usize, lead: usize) -> Vec<Iq> {
    let mut tag = Tag::new(tag_idx as u32, Point::ORIGIN, codes[tag_idx].clone());
    let env = tag
        .transmit(format!("stress payload {tag_idx}").into_bytes(), phy)
        .unwrap();
    let mut buf = vec![Iq::ZERO; lead];
    buf.extend(
        env.iter()
            .map(|&e| Iq::from_polar(0.01 * e, 0.25 + 0.15 * tag_idx as f64)),
    );
    buf.extend(vec![Iq::ZERO; 48]);
    buf
}

/// A seeded mix of frames, silence, ripple and degenerate captures,
/// spread round-robin-ish over `streams` streams.
fn stress_captures(
    seed: u64,
    streams: usize,
    per_stream: usize,
    codes: &[PnCode],
    phy: &PhyProfile,
) -> Vec<Vec<Vec<Iq>>> {
    let mut rng = Rng(seed | 1);
    (0..streams)
        .map(|_| {
            (0..per_stream)
                .map(|_| match rng.below(5) {
                    0 => vec![Iq::ZERO; 600 + rng.below(1200) as usize],
                    1 => (0..900 + rng.below(600))
                        .map(|i| Iq::new(1e-6 * (i as f64 * 0.31).sin(), 0.0))
                        .collect(),
                    2 => vec![Iq::ZERO; rng.below(50) as usize],
                    _ => {
                        let tag = rng.below(codes.len() as u64) as usize;
                        let lead = 200 + rng.below(400) as usize;
                        tag_capture(codes, phy, tag, lead)
                    }
                })
                .collect()
        })
        .collect()
}

fn source_for(per_stream: &[Vec<Vec<Iq>>], block_size: usize) -> CaptureSource {
    let mut source = CaptureSource::new(block_size);
    for (stream, caps) in per_stream.iter().enumerate() {
        for cap in caps {
            source.push(stream, cap.clone());
        }
    }
    source
}

/// Per-stream decision sequences under the given scheduler.
fn decisions(
    per_stream: &[Vec<Vec<Iq>>],
    runtime: RuntimeConfig,
    mut jitter: Option<Rng>,
) -> Vec<Vec<RxReport>> {
    let phy = PhyProfile::paper_default();
    let codes = GoldFamily::new(5).unwrap().codes(3).unwrap();
    let mut flow = RxFlowgraph::new(codes, phy, ReceiverConfig::default(), runtime);
    let source = source_for(per_stream, runtime.block_size);
    let mut got: Vec<Vec<RxReport>> = vec![Vec::new(); per_stream.len()];
    let mut next_seq = vec![0u64; per_stream.len()];
    flow.run_with_sink(source, |result| {
        if let Some(rng) = jitter.as_mut() {
            std::thread::sleep(Duration::from_micros(rng.below(1500)));
        }
        assert_eq!(result.seq, next_seq[result.stream], "in-order emission");
        next_seq[result.stream] += 1;
        got[result.stream].push(result.report);
    })
    .unwrap();
    got
}

#[test]
fn jittered_sink_decisions_match_inline() {
    let phy = PhyProfile::paper_default();
    let codes = GoldFamily::new(5).unwrap().codes(3).unwrap();
    let per_stream = stress_captures(0x5EED_CB3A, 3, 6, &codes, &phy);
    let inline = decisions(
        &per_stream,
        RuntimeConfig {
            block_size: 512,
            ring_capacity: 2,
            scheduler: Scheduler::Inline,
        },
        None,
    );
    for workers in [2usize, 4] {
        let runtime = RuntimeConfig {
            block_size: 512,
            ring_capacity: 2,
            scheduler: Scheduler::WorkStealing { workers, pin: false },
        };
        let got = decisions(&per_stream, runtime, Some(Rng(0xA5A5_0000 + workers as u64)));
        assert_eq!(got, inline, "workers={workers} diverged from inline");
    }
}

#[test]
fn capacity_one_rings_churn_the_park_unpark_handshake() {
    // The tightest configuration: every ring holds one item, so each
    // stage ping-pongs between ready and blocked and idle workers park
    // constantly. Decisions must still match Inline, and the run must
    // actually have exercised the parking path.
    let phy = PhyProfile::paper_default();
    let codes = GoldFamily::new(5).unwrap().codes(3).unwrap();
    let per_stream = stress_captures(0xC0FFEE, 2, 4, &codes, &phy);
    let inline = decisions(
        &per_stream,
        RuntimeConfig {
            block_size: 96,
            ring_capacity: 1,
            scheduler: Scheduler::Inline,
        },
        None,
    );

    let runtime = RuntimeConfig {
        block_size: 96,
        ring_capacity: 1,
        scheduler: Scheduler::WorkStealing { workers: 4, pin: false },
    };
    let mut flow = RxFlowgraph::new(
        codes,
        phy,
        ReceiverConfig::default(),
        runtime,
    );
    let source = source_for(&per_stream, 96);
    let mut got: Vec<Vec<RxReport>> = vec![Vec::new(); per_stream.len()];
    let mut rng = Rng(0x0BAD_5EED);
    let stats = flow
        .run_with_sink(source, |result| {
            // A sink stall long enough to idle the whole pool forces at
            // least one genuine park (permits are capped at the worker
            // count, so a stalled pool cannot spin on banked permits).
            std::thread::sleep(Duration::from_micros(500 + rng.below(2000)));
            got[result.stream].push(result.report);
        })
        .unwrap();
    assert_eq!(got, inline, "capacity-1 worksteal diverged from inline");
    assert!(stats.parks > 0, "no worker ever parked: {stats:?}");
    assert_eq!(stats.captures, 8);
}

#[test]
fn worker_spans_nest_stage_runs_under_the_flowgraph_root() {
    let phy = PhyProfile::paper_default();
    let codes = GoldFamily::new(5).unwrap().codes(3).unwrap();
    let per_stream = stress_captures(0x7ACE, 2, 3, &codes, &phy);
    let tracer = Tracer::new(8192);
    let runtime = RuntimeConfig {
        block_size: 1024,
        ring_capacity: 2,
        scheduler: Scheduler::WorkStealing { workers: 2, pin: false },
    };
    let mut flow = RxFlowgraph::new(codes, phy, ReceiverConfig::default(), runtime);
    flow.attach_tracer(&tracer);
    let source = source_for(&per_stream, 1024);
    flow.run(source).unwrap();

    let spans = tracer.spans();
    assert_eq!(tracer.dropped(), 0, "trace buffer too small for the test");
    let roots: Vec<_> = spans.iter().filter(|s| s.name == "flowgraph").collect();
    assert_eq!(roots.len(), 1, "exactly one flowgraph root span");
    let root = roots[0].span;

    let workers: Vec<_> = spans.iter().filter(|s| s.name == "worker").collect();
    assert_eq!(workers.len(), 2, "one span per worker");
    let mut ids: Vec<u64> = workers.iter().map(|w| w.arg.unwrap()).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![0, 1], "worker spans carry the worker index");
    for w in &workers {
        assert_eq!(w.parent, root, "worker spans nest under the flowgraph");
    }

    let worker_ids: Vec<u64> = workers.iter().map(|w| w.span).collect();
    let stage_runs: Vec<_> = spans.iter().filter(|s| s.name == "stage_run").collect();
    assert!(!stage_runs.is_empty(), "captures must produce stage_run spans");
    for s in &stage_runs {
        assert!(
            worker_ids.contains(&s.parent),
            "stage_run span parented outside the worker set: {s:?}"
        );
    }
    // The export is valid Chrome trace JSON (the CI artifact).
    let json = tracer.chrome_trace(None);
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("worker"));
}

#[test]
fn pool_counters_reach_the_metrics_registry() {
    let phy = PhyProfile::paper_default();
    let codes = GoldFamily::new(5).unwrap().codes(3).unwrap();
    let per_stream = stress_captures(0x900D, 2, 4, &codes, &phy);
    let registry = MetricsRegistry::new();
    let runtime = RuntimeConfig {
        block_size: 512,
        ring_capacity: 2,
        // One worker: the driver's wakes land in the injector (steals),
        // the worker's own downstream wakes stay local (local hits) —
        // both paths must light up even in the degenerate pool.
        scheduler: Scheduler::WorkStealing { workers: 1, pin: false },
    };
    let mut flow = RxFlowgraph::new(codes, phy, ReceiverConfig::default(), runtime);
    flow.attach_metrics(&registry);
    let source = source_for(&per_stream, 512);
    let output = flow.run(source).unwrap();

    assert!(output.stats.steals > 0, "{:?}", output.stats);
    assert!(output.stats.local_hits > 0, "{:?}", output.stats);

    let snap = registry.snapshot();
    assert_eq!(
        snap.counters["cbma.rx.runtime.worker.steal_count"],
        output.stats.steals
    );
    assert_eq!(
        snap.counters["cbma.rx.runtime.worker.local_hit"],
        output.stats.local_hits
    );
    assert!(
        snap.gauges["cbma.rx.runtime.pool_utilization"] > 0.0,
        "pool utilization gauge never set"
    );
    // Placement metrics are volatile: the manifest projection strips
    // them (locked on the obs side; double-checked here end-to-end).
    let stable = snap.without_volatile();
    assert!(!stable
        .counters
        .keys()
        .any(|name| name.starts_with("cbma.rx.runtime.worker.")));
}
