//! Equivalence of the coalesced batch receive path and sequential
//! `Receiver::receive` calls.
//!
//! `Receiver::receive_coalesced` must be a pure optimization: the
//! multi-window matrix pass shares forward transforms across captures
//! but runs the same butterflies, so every *decision* — frame
//! detection, detected ids, start offsets, decoded frames, the ACK —
//! must match the sequential path exactly, with correlations and gains
//! within FFT rounding (the coalesced path hoists the normalization
//! denominator and reads gains from the correlation row, reordering
//! float ops by ~1e-12).

use cbma_codes::{CodeFamily, GoldFamily, PnCode};
use cbma_rx::{Receiver, ReceiverConfig, RxReport};
use cbma_tag::phy::PhyProfile;
use cbma_tag::Tag;
use cbma_types::geometry::Point;
use cbma_types::Iq;

/// A lead of silence, one tag's frame at a phase rotation, trailing pad.
fn capture_for(codes: &[PnCode], phy: &PhyProfile, tag_idx: usize, lead: usize) -> Vec<Iq> {
    let mut tag = Tag::new(tag_idx as u32, Point::ORIGIN, codes[tag_idx].clone());
    let env = tag
        .transmit(format!("coalesced payload {tag_idx}").into_bytes(), phy)
        .unwrap();
    let mut buf = vec![Iq::ZERO; lead];
    buf.extend(env.iter().map(|&e| Iq::from_polar(0.01 * e, 0.3 + 0.2 * tag_idx as f64)));
    buf.extend(vec![Iq::ZERO; 64]);
    buf
}

/// Two tags superposed in one capture (a collision round).
fn collision_capture(codes: &[PnCode], phy: &PhyProfile) -> Vec<Iq> {
    let a = capture_for(codes, phy, 0, 400);
    let b = capture_for(codes, phy, 1, 400);
    let n = a.len().max(b.len());
    (0..n)
        .map(|i| {
            a.get(i).copied().unwrap_or(Iq::ZERO) + b.get(i).copied().unwrap_or(Iq::ZERO)
        })
        .collect()
}

fn assert_decisions_match(got: &RxReport, want: &RxReport, label: &str) {
    assert_eq!(got.frame_detected, want.frame_detected, "{label}: frame_detected");
    assert_eq!(got.ack, want.ack, "{label}: ack");
    assert_eq!(got.detected_ids(), want.detected_ids(), "{label}: detected ids");
    assert_eq!(got.users.len(), want.users.len(), "{label}: user count");
    for (g, w) in got.users.iter().zip(&want.users) {
        assert_eq!(g.detection.start, w.detection.start, "{label}: start");
        assert_eq!(g.outcome.is_frame(), w.outcome.is_frame(), "{label}: outcome kind");
        assert!(
            (g.detection.correlation - w.detection.correlation).abs() < 1e-9,
            "{label}: correlation {} vs {}",
            g.detection.correlation,
            w.detection.correlation
        );
        assert!(
            (g.detection.channel_gain - w.detection.channel_gain).abs() < 1e-9,
            "{label}: gain {:?} vs {:?}",
            g.detection.channel_gain,
            w.detection.channel_gain
        );
    }
    // Decoded payloads byte-for-byte.
    let frames = |r: &RxReport| {
        r.frames()
            .into_iter()
            .map(|(id, f)| (id, f.payload().to_vec()))
            .collect::<Vec<_>>()
    };
    assert_eq!(frames(got), frames(want), "{label}: decoded frames");
}

#[test]
fn coalesced_batches_match_sequential_receives() {
    let phy = PhyProfile::paper_default();
    let codes = GoldFamily::new(5).unwrap().codes(3).unwrap();

    // A mixed batch: single-tag frames at different leads, a two-tag
    // collision, pure silence, sub-threshold ripple, and a capture too
    // short to hold a reference window.
    let mut captures: Vec<Vec<Iq>> = vec![
        capture_for(&codes, &phy, 0, 300),
        collision_capture(&codes, &phy),
        vec![Iq::ZERO; 2000],
        capture_for(&codes, &phy, 2, 420),
        (0..2400)
            .map(|i| Iq::new(1e-6 * (1.0 + 0.05 * (i as f64 * 0.37).sin()), 0.0))
            .collect(),
        vec![Iq::ZERO; 40],
        capture_for(&codes, &phy, 1, 356),
    ];
    // And again in a different order to exercise arena reuse across
    // differently-shaped batches.
    let second_batch: Vec<Vec<Iq>> = captures.iter().rev().cloned().collect();
    captures.extend(second_batch);

    let mut sequential = Receiver::new(codes.clone(), phy, ReceiverConfig::default());
    let expected: Vec<RxReport> = captures.iter().map(|c| sequential.receive(c)).collect();

    let mut coalesced = Receiver::new(codes, phy, ReceiverConfig::default());
    let (first, second) = captures.split_at(7);
    let mut got: Vec<RxReport> = Vec::new();
    got.extend(coalesced.receive_coalesced(&first.iter().map(Vec::as_slice).collect::<Vec<_>>()));
    got.extend(coalesced.receive_coalesced(&second.iter().map(Vec::as_slice).collect::<Vec<_>>()));

    assert_eq!(got.len(), expected.len());
    for (i, (g, w)) in got.iter().zip(&expected).enumerate() {
        assert_decisions_match(g, w, &format!("capture {i}"));
    }
}

#[test]
fn empty_and_degenerate_batches_are_safe() {
    let phy = PhyProfile::paper_default();
    let codes = GoldFamily::new(5).unwrap().codes(2).unwrap();
    let mut rx = Receiver::new(codes, phy, ReceiverConfig::default());
    assert!(rx.receive_coalesced(&[]).is_empty());
    // A batch where nothing syncs still returns one report per capture.
    let silence = vec![Iq::ZERO; 1500];
    let short = vec![Iq::ZERO; 3];
    let reports = rx.receive_coalesced(&[&silence, &short]);
    assert_eq!(reports.len(), 2);
    assert!(reports.iter().all(|r| !r.frame_detected));
    assert!(reports.iter().all(|r| r.users.is_empty()));
}

#[test]
fn coalesced_width_one_matches_receive() {
    // The degenerate W=1 batch takes the same multi-window machinery;
    // it must agree with the plain single-capture entry point.
    let phy = PhyProfile::paper_default();
    let codes = GoldFamily::new(5).unwrap().codes(2).unwrap();
    let capture = capture_for(&codes, &phy, 1, 380);

    let mut a = Receiver::new(codes.clone(), phy, ReceiverConfig::default());
    let want = a.receive(&capture);
    let mut b = Receiver::new(codes, phy, ReceiverConfig::default());
    let got = b.receive_coalesced(&[&capture]);
    assert_eq!(got.len(), 1);
    assert_decisions_match(&got[0], &want, "W=1");
}
