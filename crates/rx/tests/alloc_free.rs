//! Proves the steady-state receive path is allocation-free.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up capture has grown every scratch arena to its high-water mark,
//! quiet captures (silence or sub-threshold noise) must perform **zero**
//! heap allocations end to end, and frame-bearing captures must settle to
//! a constant, output-proportional allocation count (the report the
//! caller keeps) — no per-capture arena churn.
//!
//! This file deliberately contains a single `#[test]`: the counter is
//! process-global, and a sibling test running on another thread would
//! pollute the window between `start_counting` and `stop_counting`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use cbma_codes::{CodeFamily, GoldFamily};
use cbma_rx::user_detect::MultiDetectScratch;
use cbma_rx::{DecoderKind, Receiver, ReceiverConfig, UserDetector};
use cbma_tag::phy::PhyProfile;
use cbma_tag::Tag;
use cbma_types::geometry::Point;
use cbma_types::Iq;

struct CountingAllocator;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with allocation counting enabled; returns how many heap
/// allocations it performed.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let out = f();
    COUNTING.store(false, Ordering::SeqCst);
    (ALLOCATIONS.load(Ordering::SeqCst), out)
}

#[test]
fn steady_state_receive_is_allocation_free() {
    let phy = PhyProfile::paper_default();
    let codes = GoldFamily::new(5).unwrap().codes(4).unwrap();
    let mut tag = Tag::new(1, Point::ORIGIN, codes[1].clone());
    let envelope = tag.transmit(b"steady state".to_vec(), &phy).unwrap();

    // A frame capture, a silent capture and a deterministic sub-threshold
    // ripple (±5 %, far under the +3 dB comparator), all the same length
    // so the arenas reach one high-water mark.
    let mut frame_capture = vec![Iq::ZERO; 400];
    frame_capture.extend(envelope.iter().map(|&e| Iq::new(0.01 * e, 0.0)));
    frame_capture.extend(vec![Iq::ZERO; 64]);
    let n = frame_capture.len();
    let silence = vec![Iq::new(1e-6, 0.0); n];
    let ripple: Vec<Iq> = (0..n)
        .map(|i| Iq::new(1e-6 * (1.0 + 0.05 * (i as f64 * 0.37).sin()), 0.0))
        .collect();

    let mut rx = Receiver::new(codes, phy, ReceiverConfig::default());

    // Warm-up: grow every arena (sync buffers, detect scratch, decode
    // lists, batch rows) to the sizes these captures need.
    assert!(rx.receive(&frame_capture).ack.acknowledges(1));
    assert!(!rx.receive(&silence).frame_detected);
    assert!(!rx.receive(&ripple).frame_detected);
    let warm_capacity = rx.scratch_capacity_bytes();
    assert!(warm_capacity > 0, "warm-up should have grown the arenas");

    // Steady state, quiet captures: strictly zero heap allocations.
    for (label, capture) in [("silence", &silence), ("ripple", &ripple)] {
        let (allocs, report) = count_allocs(|| rx.receive(capture));
        assert!(!report.frame_detected);
        assert_eq!(
            allocs, 0,
            "{label}: steady-state quiet capture allocated {allocs} times"
        );
    }

    // Steady state, frame captures: the only allocations left are the
    // report the caller keeps (users vector, decoded frame, bit buffer),
    // so the count must be identical on every subsequent capture — any
    // growth would mean the arenas are churning.
    let (first, report) = count_allocs(|| rx.receive(&frame_capture));
    assert!(report.ack.acknowledges(1));
    let (second, report) = count_allocs(|| rx.receive(&frame_capture));
    assert!(report.ack.acknowledges(1));
    assert_eq!(
        first, second,
        "frame-capture allocation count must be steady (output-only)"
    );
    assert!(
        first <= 64,
        "frame capture allocated {first} times; expected output-proportional only"
    );

    // The arenas did not grow past their warm high-water mark.
    assert_eq!(rx.scratch_capacity_bytes(), warm_capacity);

    // And quiet captures are still allocation-free afterwards.
    let (allocs, _) = count_allocs(|| rx.receive(&silence));
    assert_eq!(allocs, 0);

    // --- Multi-window batched detection -------------------------------
    //
    // The coalesced W-window matrix pass must hit the same steady state:
    // after one warm-up batch has grown the `WindowScratch` arena to its
    // W-window high-water mark, repeated batches perform zero heap
    // allocations and the arena stays pinned (no per-batch churn), for
    // the full width and for narrower batches that reuse the same arena.
    let codes = GoldFamily::new(5).unwrap().codes(4).unwrap();
    let phy = PhyProfile::paper_default();
    let det = UserDetector::with_kind(&codes, &phy, 0.2, DecoderKind::Coherent);
    let windows: Vec<&[Iq]> = vec![&frame_capture, &silence, &ripple, &frame_capture];
    let origins = vec![0usize; windows.len()];
    let mut scratch = MultiDetectScratch::new();
    let mut candidates = Vec::new();

    // Warm-up at the full width grows every arena, including the per-code
    // candidate vectors that frame-bearing windows fill.
    det.detect_candidates_multi(&windows, &origins, 4, &mut scratch, &mut candidates);
    let multi_capacity = scratch.capacity_bytes();
    let arena = scratch.storage_ptr();
    assert!(multi_capacity > 0, "warm-up should have grown the arena");
    assert!(
        candidates.iter().flatten().any(|c| !c.is_empty()),
        "frame-bearing windows should produce candidates"
    );

    for _ in 0..3 {
        let (allocs, ()) = count_allocs(|| {
            det.detect_candidates_multi(&windows, &origins, 4, &mut scratch, &mut candidates)
        });
        assert_eq!(allocs, 0, "steady-state W=4 batch allocated {allocs} times");
    }
    // A narrower batch rides the same high-water arena.
    let (allocs, ()) = count_allocs(|| {
        det.detect_candidates_multi(&windows[..2], &origins[..2], 4, &mut scratch, &mut candidates)
    });
    assert_eq!(allocs, 0, "steady-state W=2 batch allocated {allocs} times");
    assert_eq!(scratch.capacity_bytes(), multi_capacity, "arena grew past warm-up");
    assert_eq!(scratch.storage_ptr(), arena, "arena storage reallocated");
}
