//! Equivalence of the detector's direct and FFT correlation backends.
//!
//! The overlap-save engine must be a pure optimization: across random
//! PHY profiles, code counts, window contents and window lengths
//! (including windows shorter than the reference), `Direct`, `Fft`, `Batch`
//! (the shared-FFT K-code engine) and `Auto` must report the same candidates — identical code indices and
//! start offsets, correlations within 1e-9, channel gains within 1e-9.

use cbma_codes::{CodeFamily, GoldFamily, PnCode};
use cbma_rx::decoder::DecoderKind;
use cbma_rx::user_detect::{
    CorrelationPath, DetectedUser, MultiDetectScratch, UserDetector,
};
use cbma_tag::encoder::spread;
use cbma_tag::frame::preamble_pattern;
use cbma_tag::modulator::ook_envelope;
use cbma_tag::phy::PhyProfile;
use cbma_types::units::Hertz;
use cbma_types::Iq;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A profile with `spc` samples per chip and the given preamble length.
fn phy(spc: usize, preamble_bits: usize) -> PhyProfile {
    PhyProfile {
        chip_rate: Hertz::from_mhz(1.0),
        sample_rate: Hertz::from_mhz(spc as f64),
        preamble_bits,
    }
}

/// The preamble-led transmit envelope of one code, scaled by a complex
/// gain — what the detector's reference is built to match.
fn user_signal(code: &PnCode, p: &PhyProfile, gain: Iq) -> Vec<Iq> {
    let bits = preamble_pattern(p.preamble_bits);
    let env = ook_envelope(&spread(&bits, code), p.samples_per_chip());
    env.iter().map(|&e| gain.scale(e)).collect()
}

/// Asserts the two nested candidate lists are the same detections.
fn assert_same(
    a: &[Vec<DetectedUser>],
    b: &[Vec<DetectedUser>],
    label: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len(), "{}: code-list lengths differ", label);
    for (ci, (ca, cb)) in a.iter().zip(b).enumerate() {
        prop_assert_eq!(
            ca.len(),
            cb.len(),
            "{}: code {} candidate counts {} vs {}",
            label,
            ci,
            ca.len(),
            cb.len()
        );
        for (ua, ub) in ca.iter().zip(cb) {
            prop_assert_eq!(ua.code_index, ub.code_index, "{}: code index", label);
            prop_assert_eq!(ua.start, ub.start, "{}: start offset (code {})", label, ci);
            prop_assert!(
                (ua.correlation - ub.correlation).abs() < 1e-9,
                "{}: code {} corr {} vs {}",
                label,
                ci,
                ua.correlation,
                ub.correlation
            );
            prop_assert!(
                (ua.channel_gain - ub.channel_gain).abs() < 1e-9,
                "{}: code {} gain {} vs {}",
                label,
                ci,
                ua.channel_gain,
                ub.channel_gain
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Direct, FFT and Auto backends agree on random mixtures of users
    /// and noise across random PHY profiles and window lengths — the
    /// window is sometimes shorter than the reference (every code must
    /// then report no candidates on both paths).
    #[test]
    fn fft_and_direct_paths_detect_identically(
        seed in 0u64..1 << 48,
        num_codes in 1usize..=6,
        spc in 1usize..=8,
        preamble_bits in 1usize..=4,
        coherent in 0u8..2,
        slack in 0isize..900,
    ) {
        let p = phy(spc, preamble_bits);
        let codes = GoldFamily::new(5).unwrap().codes(num_codes).unwrap();
        let kind = if coherent == 0 { DecoderKind::Coherent } else { DecoderKind::Envelope };
        let det = UserDetector::with_kind(&codes, &p, 0.2, kind);
        let ref_len = det.reference_len(0);

        let mut rng = StdRng::seed_from_u64(seed);
        // Window length from just below the reference (empty results) to
        // well past it (hundreds of candidate lags, exercising several
        // overlap-save blocks and the Auto crossover on both sides).
        let wlen = (ref_len as isize + slack - 40).max(1) as usize;
        // Noise floor breaks ties between near-equal sidelobe peaks so
        // both paths rank peaks identically despite ~1e-12 FFT rounding.
        let mut window: Vec<Iq> = (0..wlen)
            .map(|_| Iq::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5).scale(0.02))
            .collect();
        // Up to two embedded users at random offsets, phases, amplitudes.
        for _ in 0..rng.gen_range(0usize..3) {
            let code = &codes[rng.gen_range(0..codes.len())];
            let sig = user_signal(code, &p, Iq::from_polar(rng.gen_range(0.2..1.5), rng.gen_range(0.0..std::f64::consts::TAU)));
            if wlen > 8 {
                let at = rng.gen_range(0..wlen - 8);
                for (i, s) in sig.into_iter().enumerate() {
                    if at + i < wlen {
                        window[at + i] += s;
                    }
                }
            }
        }

        let direct = det.detect_candidates_with(&window, 13, 4, CorrelationPath::Direct);
        let fft = det.detect_candidates_with(&window, 13, 4, CorrelationPath::Fft);
        let batch = det.detect_candidates_with(&window, 13, 4, CorrelationPath::Batch);
        let auto = det.detect_candidates_with(&window, 13, 4, CorrelationPath::Auto);
        assert_same(&direct, &fft, "direct vs fft")?;
        assert_same(&direct, &batch, "direct vs batch")?;
        assert_same(&direct, &auto, "direct vs auto")?;
        if wlen < ref_len {
            prop_assert!(direct.iter().all(Vec::is_empty));
        }
        // The default entry point is the Auto path.
        let default = det.detect_candidates(&window, 13, 4);
        assert_same(&auto, &default, "auto vs default")?;
    }

    /// The multi-window batched detector reports, per window, the same
    /// candidates every single-window backend reports for that window —
    /// identical code indices and start offsets (origins are applied per
    /// window), correlations and gains within 1e-9. Covers both decoder
    /// kinds (the coherent coalesced fast path and the per-window
    /// fallback) and ragged window lengths, including windows shorter
    /// than the reference.
    #[test]
    fn multi_window_detector_matches_per_window_backends(
        seed in 0u64..1 << 48,
        num_codes in 1usize..=5,
        spc in 1usize..=6,
        preamble_bits in 1usize..=3,
        coherent in 0u8..2,
        num_windows in 1usize..=4,
    ) {
        let p = phy(spc, preamble_bits);
        let codes = GoldFamily::new(5).unwrap().codes(num_codes).unwrap();
        let kind = if coherent == 0 { DecoderKind::Coherent } else { DecoderKind::Envelope };
        let det = UserDetector::with_kind(&codes, &p, 0.2, kind);
        let ref_len = det.reference_len(0);

        let mut rng = StdRng::seed_from_u64(seed);
        let captures: Vec<Vec<Iq>> = (0..num_windows)
            .map(|_| {
                let wlen = rng.gen_range(1usize..ref_len + 700);
                let mut window: Vec<Iq> = (0..wlen)
                    .map(|_| Iq::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5).scale(0.02))
                    .collect();
                for _ in 0..rng.gen_range(0usize..3) {
                    let code = &codes[rng.gen_range(0..codes.len())];
                    let sig = user_signal(
                        code,
                        &p,
                        Iq::from_polar(rng.gen_range(0.2..1.5), rng.gen_range(0.0..std::f64::consts::TAU)),
                    );
                    if wlen > 8 {
                        let at = rng.gen_range(0..wlen - 8);
                        for (i, s) in sig.into_iter().enumerate() {
                            if at + i < wlen {
                                window[at + i] += s;
                            }
                        }
                    }
                }
                window
            })
            .collect();
        let windows: Vec<&[Iq]> = captures.iter().map(Vec::as_slice).collect();
        let origins: Vec<usize> = (0..num_windows).map(|w| 13 + 7 * w).collect();

        let mut scratch = MultiDetectScratch::new();
        let mut multi = Vec::new();
        det.detect_candidates_multi(&windows, &origins, 4, &mut scratch, &mut multi);
        prop_assert_eq!(multi.len(), num_windows);

        for (w, window) in windows.iter().enumerate() {
            let direct = det.detect_candidates_with(window, origins[w], 4, CorrelationPath::Direct);
            assert_same(&multi[w], &direct, &format!("multi[{w}] vs direct"))?;
        }
    }
}

/// Regression: an all-zero window has zero segment energy at every lag;
/// the denominator guard must yield a clean "no candidates" on both
/// backends instead of NaN correlations.
#[test]
fn all_zero_window_yields_no_candidates_on_both_paths() {
    let p = phy(4, 2);
    let codes = GoldFamily::new(5).unwrap().codes(3).unwrap();
    for kind in [DecoderKind::Coherent, DecoderKind::Envelope] {
        let det = UserDetector::with_kind(&codes, &p, 0.2, kind);
        let window = vec![Iq::ZERO; det.reference_len(0) + 200];
        for path in [
            CorrelationPath::Direct,
            CorrelationPath::Fft,
            CorrelationPath::Batch,
            CorrelationPath::Auto,
        ] {
            let out = det.detect_candidates_with(&window, 0, 4, path);
            assert_eq!(out.len(), 3);
            assert!(
                out.iter().all(Vec::is_empty),
                "{kind:?}/{path:?} produced candidates on silence"
            );
        }
    }
}

/// Regression: a window shorter than the reference reports one empty
/// candidate list per code on every backend.
#[test]
fn window_shorter_than_reference_is_empty_on_both_paths() {
    let p = phy(8, 4);
    let codes = GoldFamily::new(5).unwrap().codes(2).unwrap();
    let det = UserDetector::new(&codes, &p, 0.3);
    let window = vec![Iq::ONE; det.reference_len(0) - 1];
    for path in [
        CorrelationPath::Direct,
        CorrelationPath::Fft,
        CorrelationPath::Batch,
        CorrelationPath::Auto,
    ] {
        let out = det.detect_candidates_with(&window, 0, 2, path);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(Vec::is_empty));
    }
}
