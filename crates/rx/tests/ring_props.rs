//! Property tests for the bounded SPSC ring the streaming runtime is
//! built on.
//!
//! Single-threaded: an arbitrary interleaving of try_push/try_pop
//! operations against a `VecDeque` oracle must agree on every accepted
//! element, every rejection (full/empty), and the final drain — across
//! wrap-around, capacity 1 and repeated fill/drain cycles. Concurrent:
//! a producer and a consumer on real threads must move every element
//! exactly once, in order, for capacities that force heavy blocking.

use std::collections::VecDeque;

use cbma_rx::runtime::{ring, TryPop, TryPush};
use proptest::prelude::*;

/// One scripted step against the ring: push a value or pop one.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u32),
    Pop,
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..1_000_000).prop_map(Op::Push),
            Just(Op::Pop),
        ],
        0..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ring_agrees_with_vecdeque_oracle(
        capacity in 1usize..6,
        ops in ops_strategy(),
    ) {
        let (tx, rx) = ring::<u32>(capacity);
        let mut oracle: VecDeque<u32> = VecDeque::new();
        for op in ops {
            match op {
                Op::Push(v) => match tx.try_push(v) {
                    TryPush::Pushed => {
                        prop_assert!(
                            oracle.len() < capacity,
                            "accepted a push the oracle says is full"
                        );
                        oracle.push_back(v);
                    }
                    TryPush::Full(returned) => {
                        prop_assert_eq!(returned, v);
                        prop_assert_eq!(oracle.len(), capacity, "rejected a non-full push");
                    }
                    TryPush::Closed(..) => {
                        prop_assert!(false, "ring closed with both ends alive");
                    }
                },
                Op::Pop => match rx.try_pop() {
                    Ok(TryPop::Item(v)) => {
                        prop_assert_eq!(Some(v), oracle.pop_front());
                    }
                    Ok(TryPop::Empty) => {
                        prop_assert!(oracle.is_empty(), "reported empty with items queued");
                    }
                    Ok(TryPop::Finished) => {
                        prop_assert!(false, "finished with the producer alive");
                    }
                    Err(e) => {
                        prop_assert!(false, "ring errored with both ends alive: {e}");
                    }
                },
            }
            prop_assert_eq!(rx.depth(), oracle.len());
        }
        // Finish and drain: exactly the oracle's remainder, in order.
        drop(tx);
        let mut rest = Vec::new();
        while let Ok(Some(v)) = rx.pop() {
            rest.push(v);
        }
        prop_assert_eq!(rest, oracle.into_iter().collect::<Vec<_>>());
        prop_assert!(matches!(rx.try_pop(), Ok(TryPop::Finished)));
    }

    #[test]
    fn concurrent_transfer_loses_nothing(
        capacity in 1usize..4,
        count in 0usize..400,
    ) {
        let (tx, rx) = ring::<usize>(capacity);
        let got = std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..count {
                    tx.push(i).expect("consumer lives until the drain ends");
                }
            });
            let mut got = Vec::with_capacity(count);
            while let Ok(Some(v)) = rx.pop() {
                got.push(v);
            }
            got
        });
        // No loss, no duplication, no reorder.
        prop_assert_eq!(got, (0..count).collect::<Vec<_>>());
    }
}

#[test]
fn capacity_one_ping_pong_stays_in_order() {
    // The tightest ring: every push blocks until the matching pop.
    let (tx, rx) = ring::<u64>(1);
    let n = 10_000u64;
    let got = std::thread::scope(|scope| {
        scope.spawn(move || {
            for i in 0..n {
                tx.push(i).unwrap();
            }
        });
        let mut got = Vec::with_capacity(n as usize);
        while let Ok(Some(v)) = rx.pop() {
            got.push(v);
        }
        got
    });
    assert_eq!(got, (0..n).collect::<Vec<_>>());
}

#[test]
fn notifications_count_transitions_not_operations() {
    // Edge-triggered signalling: a deep ring under a lockstep
    // single-threaded flow never has a waiter and never crosses
    // empty→nonempty with anyone watching more than once per refill, so
    // the notification count must track *transitions*, far below the
    // 2·N operation count a notify-per-op scheme would issue.
    let n = 1_000u32;
    let (tx, rx) = ring::<u32>(8);
    let probe = rx.probe();

    // Lockstep push/pop: every push is the empty→nonempty edge (1 notify
    // each), every pop leaves the ring empty without ever having been
    // full (0 notifies).
    for i in 0..n {
        assert!(matches!(tx.try_push(i), TryPush::Pushed));
        assert!(matches!(rx.try_pop(), Ok(TryPop::Item(_))));
    }
    let lockstep = probe.notify_count();
    assert!(
        lockstep <= u64::from(n) + 2,
        "lockstep flow issued {lockstep} notifies for {n} ops — \
         per-operation signalling crept back in"
    );

    // Batched fill/drain: 8 pushes then 8 pops is ONE data edge (the
    // first push) and ZERO space edges (the ring never blocks a
    // producer at capacity... it does hit capacity, so full→nonfull
    // fires once per cycle). Either way: O(cycles), not O(ops).
    let (tx, rx) = ring::<u32>(8);
    let probe = rx.probe();
    let cycles = 100u64;
    for _ in 0..cycles {
        for i in 0..8 {
            assert!(matches!(tx.try_push(i), TryPush::Pushed));
        }
        for _ in 0..8 {
            assert!(matches!(rx.try_pop(), Ok(TryPop::Item(_))));
        }
    }
    let batched = probe.notify_count();
    assert!(
        batched <= 2 * cycles + 2,
        "batched flow issued {batched} notifies for {} ops",
        16 * cycles
    );
}

#[test]
fn consumer_drop_unblocks_a_full_producer() {
    let (tx, rx) = ring::<u32>(1);
    assert!(matches!(tx.try_push(7), TryPush::Pushed));
    let err = std::thread::scope(|scope| {
        let handle = scope.spawn(move || {
            // The ring is full; this push can only end via the consumer
            // disappearing.
            tx.push(8)
        });
        drop(rx);
        handle.join().unwrap()
    });
    assert!(err.is_err(), "push must fail once the consumer is gone");
}
