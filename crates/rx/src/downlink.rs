//! The downlink ACK message format.
//!
//! §III-B: "the receiver then sends an ACK message that shows tag 1 and 3
//! are decoded." This module pins down that message as actual bytes a tag
//! controller can parse with a few gates: a magic nibble, a round counter
//! (so stale ACKs are ignored), a bitmap of acknowledged tag ids, and a
//! CRC-16 — the wire format behind [`AckMessage`].

use cbma_tag::crc::crc16;
use cbma_types::{CbmaError, Result};

use crate::ack::AckMessage;

/// Magic high nibble of the first byte.
const MAGIC: u8 = 0xA0;

/// Maximum tag id encodable (the bitmap is sized in whole bytes).
pub const MAX_TAG_ID: u32 = 63;

/// A serialized downlink acknowledgement.
///
/// Layout: `[MAGIC | bitmap_len(4b)] [round u16] [bitmap …] [crc16]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AckWire {
    /// Round counter (wraps at 2¹⁶).
    pub round: u16,
    /// The acknowledged set.
    pub acks: AckMessage,
}

impl AckWire {
    /// Wraps an ACK set for a round.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::InvalidConfig`] if any id exceeds
    /// [`MAX_TAG_ID`].
    pub fn new(round: u16, acks: AckMessage) -> Result<AckWire> {
        if let Some(bad) = acks.iter().find(|&id| id > MAX_TAG_ID) {
            return Err(CbmaError::InvalidConfig(format!(
                "tag id {bad} exceeds the downlink bitmap limit {MAX_TAG_ID}"
            )));
        }
        Ok(AckWire { round, acks })
    }

    /// Serializes to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let max_id = self.acks.iter().max().unwrap_or(0);
        let bitmap_len = (max_id as usize / 8) + 1;
        let mut out = Vec::with_capacity(3 + bitmap_len + 2);
        out.push(MAGIC | bitmap_len as u8);
        out.extend_from_slice(&self.round.to_be_bytes());
        let mut bitmap = vec![0u8; bitmap_len];
        for id in self.acks.iter() {
            bitmap[id as usize / 8] |= 1 << (id % 8);
        }
        out.extend_from_slice(&bitmap);
        let crc = crc16(&out);
        out.extend_from_slice(&crc.to_be_bytes());
        out
    }

    /// Parses bytes back into an ACK message.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::MalformedFrame`] on structural problems and
    /// [`CbmaError::CrcMismatch`] on a failed check.
    pub fn from_bytes(bytes: &[u8]) -> Result<AckWire> {
        if bytes.len() < 6 {
            return Err(CbmaError::MalformedFrame(format!(
                "ack message needs at least 6 bytes, got {}",
                bytes.len()
            )));
        }
        if bytes[0] & 0xF0 != MAGIC {
            return Err(CbmaError::MalformedFrame(
                "ack message magic mismatch".into(),
            ));
        }
        let bitmap_len = (bytes[0] & 0x0F) as usize;
        let expected_len = 3 + bitmap_len + 2;
        if bitmap_len == 0 || bytes.len() != expected_len {
            return Err(CbmaError::MalformedFrame(format!(
                "ack message length {} does not match header ({expected_len})",
                bytes.len()
            )));
        }
        let body = &bytes[..expected_len - 2];
        let expected = u16::from_be_bytes([bytes[expected_len - 2], bytes[expected_len - 1]]);
        let computed = crc16(body);
        if expected != computed {
            return Err(CbmaError::CrcMismatch { expected, computed });
        }
        let round = u16::from_be_bytes([bytes[1], bytes[2]]);
        let mut acks = AckMessage::new();
        for (byte_idx, &b) in bytes[3..3 + bitmap_len].iter().enumerate() {
            for bit in 0..8 {
                if b & (1 << bit) != 0 {
                    acks.insert((byte_idx * 8 + bit) as u32);
                }
            }
        }
        AckWire::new(round, acks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_round_trip() {
        // §III-B's example: tags 1 and 3 decoded.
        let wire = AckWire::new(7, AckMessage::from_ids([1, 3])).unwrap();
        let bytes = wire.to_bytes();
        let parsed = AckWire::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, wire);
        assert!(parsed.acks.acknowledges(1));
        assert!(parsed.acks.acknowledges(3));
        assert!(!parsed.acks.acknowledges(2));
        assert_eq!(parsed.round, 7);
    }

    #[test]
    fn empty_ack_round_trip() {
        let wire = AckWire::new(0, AckMessage::new()).unwrap();
        let parsed = AckWire::from_bytes(&wire.to_bytes()).unwrap();
        assert!(parsed.acks.is_empty());
    }

    #[test]
    fn large_ids_grow_the_bitmap() {
        let wire = AckWire::new(1, AckMessage::from_ids([0, 63])).unwrap();
        let bytes = wire.to_bytes();
        assert_eq!(bytes.len(), 3 + 8 + 2);
        let parsed = AckWire::from_bytes(&bytes).unwrap();
        assert!(parsed.acks.acknowledges(0));
        assert!(parsed.acks.acknowledges(63));
        assert_eq!(parsed.acks.len(), 2);
    }

    #[test]
    fn id_beyond_bitmap_rejected() {
        assert!(AckWire::new(1, AckMessage::from_ids([64])).is_err());
    }

    #[test]
    fn corruption_is_detected() {
        let wire = AckWire::new(9, AckMessage::from_ids([2, 5])).unwrap();
        let good = wire.to_bytes();
        for idx in 0..good.len() {
            let mut bad = good.clone();
            bad[idx] ^= 0x10;
            assert!(
                AckWire::from_bytes(&bad).is_err(),
                "flip at byte {idx} slipped through"
            );
        }
    }

    #[test]
    fn structural_checks() {
        assert!(AckWire::from_bytes(&[]).is_err());
        assert!(AckWire::from_bytes(&[0x00; 6]).is_err()); // bad magic
                                                           // Header claims a longer bitmap than the buffer carries.
        let wire = AckWire::new(1, AckMessage::from_ids([1])).unwrap();
        let mut bytes = wire.to_bytes();
        bytes[0] = MAGIC | 0x03;
        assert!(AckWire::from_bytes(&bytes).is_err());
    }

    #[test]
    fn round_counter_survives() {
        for round in [0u16, 1, 255, 65535] {
            let wire = AckWire::new(round, AckMessage::from_ids([4])).unwrap();
            assert_eq!(AckWire::from_bytes(&wire.to_bytes()).unwrap().round, round);
        }
    }
}
