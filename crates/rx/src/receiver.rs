//! The full receive chain: frame sync → user detection → decoding → ACK.
//!
//! [`Receiver`] is configured once per deployment with the complete code
//! set, then [`Receiver::receive`] processes each captured IQ buffer the
//! way the paper's USRP receiver does (§III-B): find the energy rise,
//! correlate every known PN code's spread preamble around it, decode each
//! detected user coherently, verify CRCs, and broadcast the ACK set.
//!
//! # Examples
//!
//! ```
//! use cbma_codes::{CodeFamily, GoldFamily};
//! use cbma_rx::{Receiver, ReceiverConfig};
//! use cbma_tag::{phy::PhyProfile, Tag};
//! use cbma_types::geometry::Point;
//! use cbma_types::Iq;
//!
//! let phy = PhyProfile::paper_default();
//! let codes = GoldFamily::new(5)?.codes(2)?;
//! let mut tag = Tag::new(0, Point::ORIGIN, codes[0].clone());
//! let envelope = tag.transmit(b"ping".to_vec(), &phy)?;
//!
//! // A clean channel: the envelope at amplitude 0.01, after 300 samples
//! // of silence.
//! let mut iq = vec![Iq::ZERO; 300];
//! iq.extend(envelope.iter().map(|&e| Iq::new(0.01 * e, 0.0)));
//! iq.extend(vec![Iq::ZERO; 64]);
//!
//! let mut receiver = Receiver::new(codes, phy, ReceiverConfig::default());
//! let report = receiver.receive(&iq);
//! assert!(report.ack.acknowledges(0));
//! # Ok::<(), cbma_types::CbmaError>(())
//! ```

use std::time::Instant;

use cbma_codes::PnCode;
use cbma_dsp::energy::EnergyEdge;
use cbma_dsp::xcorr::RunningEnergy;
use cbma_obs::trace::{SpanId, TraceId, Tracer};
use cbma_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use cbma_tag::frame::Frame;
use cbma_tag::phy::PhyProfile;
use cbma_types::Iq;

use crate::ack::AckMessage;
use crate::decoder::{DecodeOutcome, Decoder, DecoderKind};
use crate::frame_sync::{FrameSync, SyncScratch};
use crate::user_detect::{
    CorrelationPath, DetectScratch, DetectedUser, MultiDetectScratch, UserDetector,
};

/// Tunable receiver parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReceiverConfig {
    /// Moving-average window Wₙ for the energy detector, in samples.
    pub energy_window: usize,
    /// Comparator threshold over the filtered floor, dB (paper: 3 dB).
    pub energy_threshold_db: f64,
    /// Normalized preamble-correlation threshold for user detection.
    pub user_threshold: f64,
    /// How far before the energy edge the preamble search starts, in
    /// chips (the edge can fire slightly late on a slow rise).
    pub search_back_chips: usize,
    /// How far past the energy edge the preamble search extends, in
    /// chips (bounds the tag asynchrony the receiver tolerates).
    pub search_ahead_chips: usize,
    /// Decision statistic: the paper's envelope receiver or the improved
    /// coherent-IQ receiver.
    pub decoder_kind: DecoderKind,
    /// Successive-interference-cancellation passes (0 disables): after
    /// each pass, decoded users are reconstructed and subtracted, and
    /// detection re-runs for still-missing codes on the residual. A
    /// receiver-side complement to the paper's tag-side power control.
    pub sic_passes: usize,
}

impl Default for ReceiverConfig {
    fn default() -> ReceiverConfig {
        ReceiverConfig {
            energy_window: 64,
            energy_threshold_db: 3.0,
            user_threshold: 0.35,
            search_back_chips: 2,
            search_ahead_chips: 6,
            decoder_kind: DecoderKind::Coherent,
            sic_passes: 0,
        }
    }
}

/// One decoded user within a report.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedUser {
    /// The detection that led to this decode.
    pub detection: DetectedUser,
    /// The decode result.
    pub outcome: DecodeOutcome,
    /// The raw decoded bit stream (present whenever the header decoded),
    /// for bit-error instrumentation.
    pub bits: Option<cbma_types::Bits>,
}

/// Per-capture pipeline telemetry: stage spans (monotonic, nanoseconds)
/// and domain measurements, filled on every [`Receiver::receive`] call.
///
/// Stage spans are *cumulative over SIC re-runs*: when SIC re-runs the
/// pipeline on a residual, the re-run's frame-sync/detect/decode time is
/// added to the respective stage **and** covered by `sic_ns` (which times
/// the whole cancellation loop), so `sic_ns` overlaps the other stages.
///
/// Equality ignores the wall-clock stage spans (`*_ns`): two receptions of
/// the same buffer are *equal* when every deterministic output agrees, even
/// though the scheduler never hands out identical nanosecond timings. This
/// keeps `RxReport` equality meaningful for reproducibility tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct RxTelemetry {
    /// Time in the energy-edge search (frame synchronization).
    pub frame_sync_ns: u64,
    /// Time correlating code preambles (user detection).
    pub user_detect_ns: u64,
    /// Time decoding candidates, resolving aliases and probing.
    pub decode_ns: u64,
    /// Time in the whole SIC loop (reconstruction + cancellation +
    /// pipeline re-runs); 0 when SIC is disabled or skipped.
    pub sic_ns: u64,
    /// Sync candidates that were decoded across all codes.
    pub candidates_evaluated: usize,
    /// Fine-alignment probe correlations attempted (phase 3).
    pub probes_attempted: usize,
    /// Valid decodes suppressed as cross-code aliases.
    pub aliases_suppressed: usize,
    /// Candidate decodes that did not yield a CRC-valid frame.
    pub decode_failures: usize,
    /// The strongest preamble correlation seen (0 when nothing was
    /// detected).
    pub peak_correlation: f64,
    /// `peak_correlation` minus the detection threshold — the margin the
    /// best user cleared §III-B's "predetermined threshold" by (negative
    /// margins never occur: sub-threshold candidates are not reported).
    pub peak_margin: f64,
    /// SIC passes actually executed.
    pub sic_iterations: usize,
    /// Users recovered by SIC (decoded only after cancellation).
    pub sic_recovered: usize,
    /// Mean residual power per sample after the last cancellation pass
    /// (0 when SIC never ran).
    pub sic_residual_energy: f64,
}

impl PartialEq for RxTelemetry {
    fn eq(&self, other: &RxTelemetry) -> bool {
        // Deliberately skips frame_sync_ns / user_detect_ns / decode_ns /
        // sic_ns: wall-clock spans are observability metadata, not part of
        // the receiver's deterministic output.
        self.candidates_evaluated == other.candidates_evaluated
            && self.probes_attempted == other.probes_attempted
            && self.aliases_suppressed == other.aliases_suppressed
            && self.decode_failures == other.decode_failures
            && self.peak_correlation == other.peak_correlation
            && self.peak_margin == other.peak_margin
            && self.sic_iterations == other.sic_iterations
            && self.sic_recovered == other.sic_recovered
            && self.sic_residual_energy == other.sic_residual_energy
    }
}

impl RxTelemetry {
    /// Folds a re-run's telemetry into this capture's totals (stage spans
    /// and counts add; peak statistics keep the maximum).
    fn absorb(&mut self, other: &RxTelemetry) {
        self.frame_sync_ns += other.frame_sync_ns;
        self.user_detect_ns += other.user_detect_ns;
        self.decode_ns += other.decode_ns;
        self.candidates_evaluated += other.candidates_evaluated;
        self.probes_attempted += other.probes_attempted;
        self.aliases_suppressed += other.aliases_suppressed;
        self.decode_failures += other.decode_failures;
        if other.peak_correlation > self.peak_correlation {
            self.peak_correlation = other.peak_correlation;
            self.peak_margin = other.peak_margin;
        }
    }
}

/// The result of processing one captured buffer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RxReport {
    /// Whether the energy detector found a frame at all.
    pub frame_detected: bool,
    /// Every detected user with its decode outcome.
    pub users: Vec<DecodedUser>,
    /// The broadcast ACK (ids whose frames passed CRC).
    pub ack: AckMessage,
    /// Per-stage spans and domain measurements for this capture.
    pub telemetry: RxTelemetry,
}

impl RxReport {
    /// Ids of users that were detected (preamble correlation), decoded or
    /// not.
    pub fn detected_ids(&self) -> Vec<usize> {
        self.users.iter().map(|u| u.detection.code_index).collect()
    }

    /// The successfully decoded frames as `(tag id, frame)` pairs.
    pub fn frames(&self) -> Vec<(usize, &Frame)> {
        self.users
            .iter()
            .filter_map(|u| u.outcome.frame().map(|f| (u.detection.code_index, f)))
            .collect()
    }
}

/// Pre-registered `cbma.rx.*` metric handles (lock-free atomics), bound
/// once by [`Receiver::attach_metrics`] so the receive path never touches
/// the registry lock.
#[derive(Debug, Clone)]
struct RxMetrics {
    stage_frame_sync_ns: Histogram,
    stage_user_detect_ns: Histogram,
    stage_decode_ns: Histogram,
    stage_sic_ns: Histogram,
    peak_margin_milli: Histogram,
    captures: Counter,
    frames_detected: Counter,
    candidates: Counter,
    users_decoded: Counter,
    decode_failures: Counter,
    aliases_suppressed: Counter,
    probes: Counter,
    sic_recovered: Counter,
    scratch_bytes: Gauge,
}

impl RxMetrics {
    fn register(registry: &MetricsRegistry) -> RxMetrics {
        RxMetrics {
            stage_frame_sync_ns: registry.histogram("cbma.rx.stage.frame_sync_ns"),
            stage_user_detect_ns: registry.histogram("cbma.rx.stage.user_detect_ns"),
            stage_decode_ns: registry.histogram("cbma.rx.stage.decode_ns"),
            stage_sic_ns: registry.histogram("cbma.rx.stage.sic_ns"),
            peak_margin_milli: registry.histogram("cbma.rx.peak_margin_milli"),
            captures: registry.counter("cbma.rx.captures"),
            frames_detected: registry.counter("cbma.rx.frames_detected"),
            candidates: registry.counter("cbma.rx.candidates"),
            users_decoded: registry.counter("cbma.rx.users_decoded"),
            decode_failures: registry.counter("cbma.rx.decode_failures"),
            aliases_suppressed: registry.counter("cbma.rx.aliases_suppressed"),
            probes: registry.counter("cbma.rx.probes"),
            sic_recovered: registry.counter("cbma.rx.sic_recovered"),
            scratch_bytes: registry.gauge("cbma.rx.scratch_bytes"),
        }
    }

    /// One capture's telemetry into the registry (one call per receive).
    fn record(&self, report: &RxReport) {
        let t = &report.telemetry;
        self.stage_frame_sync_ns.record(t.frame_sync_ns);
        self.stage_user_detect_ns.record(t.user_detect_ns);
        self.stage_decode_ns.record(t.decode_ns);
        if t.sic_iterations > 0 {
            self.stage_sic_ns.record(t.sic_ns);
        }
        self.captures.inc();
        if report.frame_detected {
            self.frames_detected.inc();
            // Milli-units so the log₂ buckets resolve margins < 1.0.
            self.peak_margin_milli
                .record((t.peak_margin.max(0.0) * 1000.0) as u64);
        }
        self.candidates.add(t.candidates_evaluated as u64);
        self.users_decoded.add(report.ack.len() as u64);
        self.decode_failures.add(t.decode_failures as u64);
        self.aliases_suppressed.add(t.aliases_suppressed as u64);
        self.probes.add(t.probes_attempted as u64);
        self.sic_recovered.add(t.sic_recovered as u64);
    }
}

/// Reusable per-receiver working memory for the whole receive pipeline:
/// frame-sync state, detection buffers, decode candidate lists, alias-
/// resolution tables and the SIC residual. Every buffer is cleared — not
/// dropped — per capture, so a receiver in steady state (repeated captures
/// of similar size) performs **zero heap allocation** on quiet captures
/// and only output-proportional allocation when frames decode. One
/// instance lives in each [`Receiver`]; `parallel_sweep` workers each own
/// a receiver and therefore a private arena.
#[derive(Debug)]
pub struct RxScratch {
    sync: SyncScratch,
    detect: DetectScratch,
    /// Coalesced multi-window detection arena (see
    /// [`Receiver::receive_coalesced`]).
    multi_detect: MultiDetectScratch,
    /// Per-window candidate lists from the coalesced detection pass.
    multi_candidates: Vec<Vec<Vec<DetectedUser>>>,
    candidates: Vec<Vec<DetectedUser>>,
    decoded: Vec<Vec<DecodedUser>>,
    /// `(code, candidate index)` pairs, sorted by descending correlation.
    order: Vec<(usize, usize)>,
    /// Accepted candidate index per code, if any.
    accepted: Vec<Option<usize>>,
    /// `(code, payload)` pairs claimed by accepted candidates.
    claimed: Vec<(usize, Vec<u8>)>,
    /// Phase-3 timing hypotheses (accepted starts + window origin).
    accepted_starts: Vec<usize>,
    /// Deduplicated phase-3 probe offsets (±1 chip around hypotheses).
    probe_offsets: Vec<usize>,
    /// SIC working copy of the capture.
    residual: Vec<Iq>,
    /// Envelope prefix sums for [`crate::sic::cancel_user_in`].
    env_energy: RunningEnergy,
}

impl RxScratch {
    fn new(sync: &FrameSync) -> RxScratch {
        RxScratch {
            sync: sync.scratch(),
            detect: DetectScratch::new(),
            multi_detect: MultiDetectScratch::new(),
            multi_candidates: Vec::new(),
            candidates: Vec::new(),
            decoded: Vec::new(),
            order: Vec::new(),
            accepted: Vec::new(),
            claimed: Vec::new(),
            accepted_starts: Vec::new(),
            probe_offsets: Vec::new(),
            residual: Vec::new(),
            env_energy: RunningEnergy::default(),
        }
    }

    /// Heap capacity held directly by the arena's buffers, in bytes
    /// (excluding per-element owned allocations such as decoded frame
    /// payloads, which leave with the report). Exported as the
    /// `cbma.rx.scratch_bytes` gauge when metrics are attached.
    pub fn capacity_bytes(&self) -> usize {
        self.sync.capacity_bytes()
            + self.detect.capacity_bytes()
            + self.multi_detect.capacity_bytes()
            + self
                .multi_candidates
                .iter()
                .flatten()
                .map(|v| v.capacity() * std::mem::size_of::<DetectedUser>())
                .sum::<usize>()
            + self.candidates.capacity() * std::mem::size_of::<Vec<DetectedUser>>()
            + self
                .candidates
                .iter()
                .map(|v| v.capacity() * std::mem::size_of::<DetectedUser>())
                .sum::<usize>()
            + self.decoded.capacity() * std::mem::size_of::<Vec<DecodedUser>>()
            + self
                .decoded
                .iter()
                .map(|v| v.capacity() * std::mem::size_of::<DecodedUser>())
                .sum::<usize>()
            + self.order.capacity() * std::mem::size_of::<(usize, usize)>()
            + self.accepted.capacity() * std::mem::size_of::<Option<usize>>()
            + self.claimed.capacity() * std::mem::size_of::<(usize, Vec<u8>)>()
            + self.accepted_starts.capacity() * std::mem::size_of::<usize>()
            + self.probe_offsets.capacity() * std::mem::size_of::<usize>()
            + self.residual.capacity() * std::mem::size_of::<Iq>()
            + self.env_energy.capacity_bytes()
    }
}

/// The CBMA receiver for one deployment's code set.
#[derive(Debug)]
pub struct Receiver {
    codes: Vec<PnCode>,
    phy: PhyProfile,
    config: ReceiverConfig,
    sync: FrameSync,
    detector: UserDetector,
    decoders: Vec<Decoder>,
    /// Extra backward search in chips: a code that begins with a run of
    /// `0` chips radiates nothing until the run ends, so the energy edge
    /// fires that many chips *after* the frame start.
    leading_silence_chips: usize,
    /// Registered metric handles, when observability is attached.
    metrics: Option<RxMetrics>,
    /// Span recorder, when tracing is attached (see
    /// [`Receiver::attach_tracer`]).
    tracer: Option<Tracer>,
    /// Parent span for the *next* capture only, set by the engine so the
    /// capture span nests under its round span; consumed per receive.
    trace_parent: Option<(TraceId, SpanId)>,
    /// Reusable pipeline working memory (see [`RxScratch`]).
    scratch: RxScratch,
}

/// Per-capture trace context threaded through the pipeline stages:
/// `(tracer, trace id, parent span)`. `None` on the untraced path.
pub(crate) type TraceCtx<'a> = Option<(&'a Tracer, TraceId, SpanId)>;

/// What frame synchronization found in one capture. Shared with the
/// streaming runtime (`crate::runtime`), whose frame-sync stage derives
/// the same outcome from a [`crate::frame_sync::SyncStream`] via
/// [`Receiver::outcome_for_edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SyncOutcome {
    /// No energy edge: a quiet capture.
    NoEdge,
    /// An edge fired but the derived search window is empty (the capture
    /// ends at the edge).
    EmptyWindow,
    /// The preamble search window `[start, end)` into the capture.
    Window(usize, usize),
}

impl Receiver {
    /// Builds a receiver that knows the full code set of the deployment.
    ///
    /// # Panics
    ///
    /// Panics if `codes` is empty or the config thresholds are out of
    /// range (see [`UserDetector::new`]).
    pub fn new(codes: Vec<PnCode>, phy: PhyProfile, config: ReceiverConfig) -> Receiver {
        let sync = FrameSync::new(
            config.energy_window,
            cbma_types::units::Db::new(config.energy_threshold_db),
        );
        let detector =
            UserDetector::with_kind(&codes, &phy, config.user_threshold, config.decoder_kind);
        let decoders = codes
            .iter()
            .map(|c| Decoder::with_kind(c, &phy, config.decoder_kind))
            .collect();
        let leading_silence_chips = codes
            .iter()
            .map(|c| c.bits().iter().take_while(|&b| b == 0).count())
            .max()
            .unwrap_or(0);
        let scratch = RxScratch::new(&sync);
        Receiver {
            codes,
            phy,
            config,
            sync,
            detector,
            decoders,
            leading_silence_chips,
            metrics: None,
            tracer: None,
            trace_parent: None,
            scratch,
        }
    }

    /// Attaches a metrics registry: every subsequent [`Receiver::receive`]
    /// records its per-stage spans and domain counters under `cbma.rx.*`.
    ///
    /// Handles are resolved once here; the receive path itself only does
    /// lock-free atomic adds. Without this call the receive path performs
    /// no registry work at all (the per-report [`RxTelemetry`] is always
    /// filled — it costs a handful of monotonic clock reads).
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(RxMetrics::register(registry));
    }

    /// Attaches a span tracer: every subsequent [`Receiver::receive`]
    /// records a `capture` span tree (capture → frame_sync / user_detect /
    /// decode / sic → per-code `correlate` and `fft_block` kernels) into
    /// the tracer's ring. Without this call the receive path pays one
    /// `Option` branch per stage and records nothing — the same
    /// NoopSink-is-free guarantee the metric handles follow.
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = Some(tracer.clone());
    }

    /// Nests the *next* capture's `capture` span under an existing span
    /// (the engine's per-round span). Consumed by the next
    /// [`Receiver::receive`]; without it each capture starts a fresh
    /// trace. No-op until a tracer is attached.
    pub fn set_trace_parent(&mut self, trace: TraceId, parent: SpanId) {
        self.trace_parent = Some((trace, parent));
    }

    /// The PHY profile the receiver is configured for.
    #[inline]
    pub fn phy(&self) -> &PhyProfile {
        &self.phy
    }

    /// The number of codes (potential users) known to the receiver.
    #[inline]
    pub fn code_count(&self) -> usize {
        self.codes.len()
    }

    /// Processes one captured IQ buffer end to end, applying any
    /// configured SIC passes. The returned report carries per-stage
    /// telemetry; when a registry is attached (see
    /// [`Receiver::attach_metrics`]) the same measurements are also
    /// recorded as `cbma.rx.*` metrics.
    ///
    /// Takes `&mut self` because the pipeline runs out of a per-receiver
    /// scratch arena ([`RxScratch`]): in steady state (captures of similar
    /// size) the whole chain performs zero heap allocation on quiet
    /// captures and only output-proportional allocation when frames
    /// decode.
    pub fn receive(&mut self, samples: &[Iq]) -> RxReport {
        // The tracer is cloned to a local so the trace context can borrow
        // it across the `&mut self` pipeline calls below.
        let tracer = self.tracer.clone();
        let capture_span = tracer.as_ref().map(|t| {
            let (trace, parent) = match self.trace_parent.take() {
                Some((trace, parent)) => (trace, Some(parent)),
                None => (t.new_trace(), None),
            };
            (trace, t.span(trace, parent, "capture"))
        });
        let trace: TraceCtx = capture_span
            .as_ref()
            .map(|(trace, span)| (tracer.as_ref().expect("span implies tracer"), *trace, span.id()));
        let mut report = self.receive_once(samples, trace);
        self.apply_sic(samples, &mut report, trace);
        if let Some(metrics) = &self.metrics {
            metrics.record(&report);
            metrics.scratch_bytes.set(self.scratch.capacity_bytes() as f64);
        }
        report
    }

    /// Runs the configured SIC passes over one capture's report (no-op
    /// when SIC is disabled). `trace` is the parent context the `sic`
    /// span nests under.
    pub(crate) fn apply_sic(&mut self, samples: &[Iq], report: &mut RxReport, trace: TraceCtx) {
        if self.config.sic_passes == 0 {
            return;
        }
        let sic_start = Instant::now();
        let sic_span = trace.map(|(t, tr, parent)| t.span(tr, Some(parent), "sic"));
        let sic_trace: TraceCtx = trace
            .zip(sic_span.as_ref())
            .map(|((t, tr, _), span)| (t, tr, span.id()));
        for _ in 0..self.config.sic_passes {
            report.telemetry.sic_iterations += 1;
            if !self.sic_pass(samples, report, sic_trace) {
                break;
            }
        }
        drop(sic_span);
        report.telemetry.sic_ns = sic_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    }

    /// Processes a batch of captured buffers in one coalesced pass:
    /// frame-sync runs per capture, then every synced search window joins
    /// a single [`UserDetector::detect_candidates_multi`] matrix pass
    /// (one forward transform per window, the cached reference spectra
    /// and twiddle tables shared across all windows), and the decode /
    /// alias-resolution / SIC phases run per capture exactly as
    /// [`Receiver::receive`] does. Reports come back index-aligned with
    /// `captures`.
    ///
    /// Detections are the same as W separate [`Receiver::receive`] calls
    /// (offsets exactly; correlations and gains within FFT rounding —
    /// see `tests/coalesced_equivalence.rs`), so downstream outcomes
    /// agree except on razor's-edge threshold ties that move by < 1e-9.
    ///
    /// When a tracer is attached the batch records a single
    /// `coalesced_receive` root (or nests under
    /// [`Receiver::set_trace_parent`]) with per-capture `frame_sync`
    /// spans, one shared `user_detect` span (containing the engine's
    /// `multi_window_correlate` span) and per-capture `decode`/`sic`
    /// spans as direct children; the shared detection cost is split
    /// evenly across the coalesced captures' `user_detect_ns` telemetry.
    pub fn receive_coalesced(&mut self, captures: &[&[Iq]]) -> Vec<RxReport> {
        let tracer = self.tracer.clone();
        let batch_span = tracer.as_ref().map(|t| {
            let (trace, parent) = match self.trace_parent.take() {
                Some((trace, parent)) => (trace, Some(parent)),
                None => (t.new_trace(), None),
            };
            (trace, t.span(trace, parent, "coalesced_receive"))
        });
        let trace: TraceCtx = batch_span
            .as_ref()
            .map(|(trace, span)| (tracer.as_ref().expect("span implies tracer"), *trace, span.id()));

        let mut reports: Vec<RxReport> = Vec::with_capacity(captures.len());
        // (capture index, window start, window end) for captures whose
        // energy edge yielded a usable search window.
        let mut synced: Vec<(usize, usize, usize)> = Vec::with_capacity(captures.len());
        for (i, &samples) in captures.iter().enumerate() {
            let mut telemetry = RxTelemetry::default();
            match self.sync_capture(samples, &mut telemetry, trace) {
                SyncOutcome::NoEdge => reports.push(RxReport {
                    telemetry,
                    ..RxReport::default()
                }),
                SyncOutcome::EmptyWindow => reports.push(RxReport {
                    frame_detected: true,
                    telemetry,
                    ..RxReport::default()
                }),
                SyncOutcome::Window(start, end) => {
                    synced.push((i, start, end));
                    reports.push(RxReport {
                        frame_detected: true,
                        telemetry,
                        ..RxReport::default()
                    });
                }
            }
        }
        if !synced.is_empty() {
            let stage_start = Instant::now();
            let windows: Vec<&[Iq]> = synced.iter().map(|&(i, s, e)| &captures[i][s..e]).collect();
            let origins: Vec<usize> = synced.iter().map(|&(_, s, _)| s).collect();
            let RxScratch {
                multi_detect,
                multi_candidates,
                ..
            } = &mut self.scratch;
            match trace {
                Some((tracer, tr, parent)) => {
                    let span = tracer.span(tr, Some(parent), "user_detect");
                    self.detector.detect_candidates_multi_traced(
                        &windows,
                        &origins,
                        8,
                        multi_detect,
                        multi_candidates,
                        tracer,
                        tr,
                        span.id(),
                    );
                }
                None => self.detector.detect_candidates_multi(
                    &windows,
                    &origins,
                    8,
                    multi_detect,
                    multi_candidates,
                ),
            }
            let per_window_ns =
                (stage_start.elapsed().as_nanos() / synced.len() as u128).min(u64::MAX as u128) as u64;
            for (w, &(i, window_start, _)) in synced.iter().enumerate() {
                // Stage window w's candidate lists into the single-capture
                // arena so the decode phases run unchanged.
                let RxScratch {
                    candidates,
                    multi_candidates,
                    ..
                } = &mut self.scratch;
                let per_code = &multi_candidates[w];
                candidates.truncate(per_code.len());
                for v in candidates.iter_mut() {
                    v.clear();
                }
                candidates.resize_with(per_code.len(), Vec::new);
                for (dst, src) in candidates.iter_mut().zip(per_code) {
                    dst.extend_from_slice(src);
                }
                let mut telemetry = reports[i].telemetry;
                telemetry.user_detect_ns = per_window_ns;
                let mut report = self.decode_detected(captures[i], window_start, telemetry, trace);
                self.apply_sic(captures[i], &mut report, trace);
                reports[i] = report;
            }
        }
        drop(batch_span);
        if let Some(metrics) = &self.metrics {
            for report in &reports {
                metrics.record(report);
            }
            metrics.scratch_bytes.set(self.scratch.capacity_bytes() as f64);
        }
        reports
    }

    /// Heap capacity currently retained by the receiver's scratch arena.
    pub fn scratch_capacity_bytes(&self) -> usize {
        self.scratch.capacity_bytes()
    }

    /// Records one finished report into the attached metrics registry
    /// (no-op without [`Receiver::attach_metrics`]). [`Receiver::receive`]
    /// does this itself; paths that assemble reports outside the receiver
    /// — the streaming runtime, whose stage receivers each see only part
    /// of the pipeline — call this on the final report so the `cbma.rx.*`
    /// counters and histograms match the monolithic path.
    pub fn record_report_metrics(&self, report: &RxReport) {
        if let Some(metrics) = &self.metrics {
            metrics.record(report);
        }
    }

    /// The frame synchronizer, for the streaming runtime's incremental
    /// sync stage ([`FrameSync::stream`]).
    pub(crate) fn frame_sync(&self) -> &FrameSync {
        &self.sync
    }

    /// The per-code candidate arena, so the streaming runtime can move
    /// detection results between stage receivers — the detect stage swaps
    /// its lists out into the stage message, the decode stage stages them
    /// back in (the same clear-and-refill pattern
    /// [`Receiver::receive_coalesced`] uses for multi-window results).
    pub(crate) fn candidates_mut(&mut self) -> &mut Vec<Vec<DetectedUser>> {
        &mut self.scratch.candidates
    }

    /// Stages externally produced candidate lists into the arena so
    /// [`Receiver::finish_outcome`] decodes them.
    pub(crate) fn stage_candidates(&mut self, lists: &[Vec<DetectedUser>]) {
        let candidates = &mut self.scratch.candidates;
        candidates.truncate(lists.len());
        for v in candidates.iter_mut() {
            v.clear();
        }
        candidates.resize_with(lists.len(), Vec::new);
        for (dst, src) in candidates.iter_mut().zip(lists) {
            dst.extend_from_slice(src);
        }
    }

    /// One SIC pass: subtract every decoded user, re-run the pipeline on
    /// the residual, and adopt newly decoded codes. Returns whether the
    /// report changed.
    fn sic_pass(&mut self, samples: &[Iq], report: &mut RxReport, trace: TraceCtx) -> bool {
        let decoded_count = report.users.iter().filter(|u| u.outcome.is_frame()).count();
        if decoded_count == 0 || decoded_count == self.codes.len() {
            return false;
        }
        let spc = self.phy.samples_per_chip();
        // The residual buffer is arena-owned: taken for the duration of
        // the pass (receive_once below re-borrows the scratch) and put
        // back with its capacity intact.
        let mut residual = std::mem::take(&mut self.scratch.residual);
        residual.clear();
        residual.extend_from_slice(samples);
        let mut claimed: Vec<Vec<u8>> = Vec::new();
        for user in report.users.iter().filter(|u| u.outcome.is_frame()) {
            let frame = user.outcome.frame().expect("filtered to frames");
            claimed.push(frame.payload().to_vec());
            let envelope = crate::sic::reconstruct_envelope(
                frame,
                &self.codes[user.detection.code_index],
                &self.phy,
            );
            let window = self.codes[user.detection.code_index].len() * spc;
            crate::sic::cancel_user_in(
                &mut residual,
                user.detection.start,
                &envelope,
                window,
                &mut self.scratch.env_energy,
            );
        }
        if !residual.is_empty() {
            report.telemetry.sic_residual_energy =
                residual.iter().map(|s| s.power()).sum::<f64>() / residual.len() as f64;
        }

        let rerun = self.receive_once(&residual, trace);
        self.scratch.residual = residual;
        report.telemetry.absorb(&rerun.telemetry);
        let mut changed = false;
        for new_user in rerun.users {
            if !new_user.outcome.is_frame() {
                continue;
            }
            let code = new_user.detection.code_index;
            let already = report
                .users
                .iter()
                .any(|u| u.detection.code_index == code && u.outcome.is_frame());
            let duplicate = new_user
                .outcome
                .frame()
                .map(|f| claimed.iter().any(|p| p.as_slice() == f.payload()))
                .unwrap_or(false);
            if already || duplicate {
                continue;
            }
            report.ack.insert(code as u32);
            if let Some(existing) = report
                .users
                .iter_mut()
                .find(|u| u.detection.code_index == code)
            {
                *existing = new_user;
            } else {
                report.users.push(new_user);
            }
            report.telemetry.sic_recovered += 1;
            changed = true;
        }
        changed
    }

    /// Frame synchronization for one capture: finds the best energy edge
    /// and derives the preamble search window, timing the stage into
    /// `telemetry`.
    pub(crate) fn sync_capture(
        &mut self,
        samples: &[Iq],
        telemetry: &mut RxTelemetry,
        trace: TraceCtx,
    ) -> SyncOutcome {
        let stage_start = Instant::now();
        let sync_span = trace.map(|(t, tr, parent)| t.span(tr, Some(parent), "frame_sync"));
        let edge = self.sync.best_edge_in(samples, &mut self.scratch.sync);
        drop(sync_span);
        telemetry.frame_sync_ns = stage_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.outcome_for_edge(edge, samples.len())
    }

    /// Derives the preamble search window from a qualified energy edge —
    /// the window math shared by [`Receiver::sync_capture`] and the
    /// streaming frame-sync stage (which finds the edge incrementally via
    /// [`crate::frame_sync::SyncStream`] and converts it here).
    pub(crate) fn outcome_for_edge(&self, edge: Option<EnergyEdge>, len: usize) -> SyncOutcome {
        let Some(edge) = edge else {
            return SyncOutcome::NoEdge;
        };
        let spc = self.phy.samples_per_chip();
        let back = (self.config.search_back_chips + self.leading_silence_chips) * spc;
        let ahead = self.config.search_ahead_chips * spc;
        let window_start = edge.index.saturating_sub(back);
        // The search window must cover the longest spread preamble plus
        // the asynchrony allowance.
        let max_ref = (0..self.codes.len())
            .map(|i| self.detector.reference_len(i))
            .max()
            .unwrap_or(0);
        let window_end = (window_start + back + ahead + max_ref).min(len);
        if window_end <= window_start {
            SyncOutcome::EmptyWindow
        } else {
            SyncOutcome::Window(window_start, window_end)
        }
    }

    /// Runs the detection/decode pipeline once (no SIC). `trace` is the
    /// parent context the stage spans nest under — the capture span on
    /// the first run, the `sic` span on cancellation re-runs, `None` when
    /// no tracer is attached (one branch per stage).
    fn receive_once(&mut self, samples: &[Iq], trace: TraceCtx) -> RxReport {
        let mut telemetry = RxTelemetry::default();
        let outcome = self.sync_capture(samples, &mut telemetry, trace);
        if let SyncOutcome::Window(start, end) = outcome {
            self.detect_window(samples, start, end, &mut telemetry, trace);
        }
        self.finish_outcome(samples, outcome, telemetry, trace)
    }

    /// The user-detection stage: correlates the search window
    /// `[window_start, window_end)` against every code and fills the
    /// per-code candidate lists in `self.scratch.candidates`, timing the
    /// stage into `telemetry`. Shared by [`Receiver::receive`] (via
    /// `receive_once`) and the streaming runtime's detect stage.
    pub(crate) fn detect_window(
        &mut self,
        samples: &[Iq],
        window_start: usize,
        window_end: usize,
        telemetry: &mut RxTelemetry,
        trace: TraceCtx,
    ) {
        let window = &samples[window_start..window_end];
        let stage_start = Instant::now();
        let RxScratch {
            detect, candidates, ..
        } = &mut self.scratch;
        match trace {
            Some((tracer, tr, parent)) => {
                let span = tracer.span(tr, Some(parent), "user_detect");
                self.detector.detect_candidates_traced(
                    window,
                    window_start,
                    8,
                    CorrelationPath::Auto,
                    detect,
                    candidates,
                    tracer,
                    tr,
                    span.id(),
                );
            }
            None => self.detector.detect_candidates_in(
                window,
                window_start,
                8,
                CorrelationPath::Auto,
                detect,
                candidates,
            ),
        }
        telemetry.user_detect_ns = stage_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    }

    /// Block-fed variant of [`Receiver::detect_window`]: the window is
    /// correlated through the chunk-aware detector entry, which feeds the
    /// overlap-save engine `block_size` samples at a time (the streaming
    /// runtime's natural granularity) and produces **bit-identical**
    /// candidates — the streamed batch pass shares its carry-over
    /// normalization with the one-shot pass (see
    /// `cbma-dsp/tests/stream_equivalence.rs`).
    pub(crate) fn detect_window_streamed(
        &mut self,
        samples: &[Iq],
        window_start: usize,
        window_end: usize,
        block_size: usize,
        telemetry: &mut RxTelemetry,
        trace: TraceCtx,
    ) {
        let window = &samples[window_start..window_end];
        let stage_start = Instant::now();
        let RxScratch {
            detect, candidates, ..
        } = &mut self.scratch;
        let span = trace.map(|(t, tr, parent)| t.span(tr, Some(parent), "user_detect"));
        self.detector.detect_candidates_streamed(
            window,
            window_start,
            8,
            block_size,
            detect,
            candidates,
        );
        drop(span);
        telemetry.user_detect_ns = stage_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    }

    /// The decode tail shared by `receive_once` and the streaming decode
    /// stage: turns a [`SyncOutcome`] (plus the candidates staged in
    /// `self.scratch.candidates` when the outcome is a window) into the
    /// capture's report.
    pub(crate) fn finish_outcome(
        &mut self,
        samples: &[Iq],
        outcome: SyncOutcome,
        telemetry: RxTelemetry,
        trace: TraceCtx,
    ) -> RxReport {
        match outcome {
            SyncOutcome::NoEdge => RxReport {
                telemetry,
                ..RxReport::default()
            },
            SyncOutcome::EmptyWindow => RxReport {
                frame_detected: true,
                telemetry,
                ..RxReport::default()
            },
            SyncOutcome::Window(start, _) => self.decode_detected(samples, start, telemetry, trace),
        }
    }

    /// The decode half of the pipeline: consumes the candidate lists in
    /// `self.scratch.candidates` (filled by either the single-window or
    /// the coalesced multi-window detection pass) and runs candidate
    /// decoding, global alias resolution and the fine-alignment probe
    /// fallback. Returns the assembled report with `frame_detected` set.
    fn decode_detected(
        &mut self,
        samples: &[Iq],
        window_start: usize,
        mut telemetry: RxTelemetry,
        trace: TraceCtx,
    ) -> RxReport {
        let spc = self.phy.samples_per_chip();
        let back = (self.config.search_back_chips + self.leading_silence_chips) * spc;
        let RxScratch {
            candidates,
            decoded,
            order,
            accepted,
            claimed,
            accepted_starts,
            probe_offsets,
            ..
        } = &mut self.scratch;
        telemetry.candidates_evaluated = candidates.iter().map(Vec::len).sum();
        for det in candidates.iter().flatten() {
            if det.correlation > telemetry.peak_correlation {
                telemetry.peak_correlation = det.correlation;
                telemetry.peak_margin = det.correlation - self.detector.threshold();
            }
        }

        let stage_start = Instant::now();
        let _decode_span = trace.map(|(t, tr, parent)| t.span(tr, Some(parent), "decode"));

        // Phase 1: decode every sync candidate of every code. The decode
        // lists are arena-owned: cleared per capture, capacity retained.
        decoded.truncate(candidates.len());
        for v in decoded.iter_mut() {
            v.clear();
        }
        decoded.resize_with(candidates.len(), Vec::new);
        for (code_candidates, slot) in candidates.iter().zip(decoded.iter_mut()) {
            for &det in code_candidates {
                let (outcome, bits) = self.decoders[det.code_index].decode_frame_with_bits(
                    samples,
                    det.start,
                    det.channel_gain,
                );
                slot.push(DecodedUser {
                    detection: det,
                    outcome,
                    bits,
                });
            }
        }
        telemetry.decode_failures = decoded
            .iter()
            .flatten()
            .filter(|u| !u.outcome.is_frame())
            .count();

        // Phase 2: resolve cross-code aliases globally. A shifted copy of
        // one tag's waveform can correlate above threshold under another
        // code and decode the victim's byte-identical frame — so accept
        // valid candidates in descending correlation order, skipping any
        // whose payload is already claimed by an accepted candidate of a
        // different code, then fall back per code to its strongest
        // remaining candidate.
        order.clear();
        for (c, cands) in decoded.iter().enumerate() {
            for (k, u) in cands.iter().enumerate() {
                if u.outcome.is_frame() {
                    order.push((c, k));
                }
            }
        }
        order.sort_by(|a, b| {
            decoded[b.0][b.1]
                .detection
                .correlation
                .partial_cmp(&decoded[a.0][a.1].detection.correlation)
                .expect("correlations are finite")
        });
        accepted.clear();
        accepted.resize(decoded.len(), None);
        claimed.clear();
        for &(c, k) in order.iter() {
            if accepted[c].is_some() {
                continue;
            }
            let payload = decoded[c][k]
                .outcome
                .frame()
                .expect("only valid frames enter the order")
                .payload()
                .to_vec();
            let duplicate = claimed.iter().any(|(oc, p)| *oc != c && *p == payload);
            if duplicate {
                continue;
            }
            claimed.push((c, payload));
            accepted[c] = Some(k);
        }

        // Phase 3: fine-alignment fallback. Orthogonal concurrent tags
        // null each other's interference exactly at the true alignment,
        // so the correlation profile *dips* there and the peak-picking of
        // phase 1 can miss it entirely. Re-probe codes that still lack a
        // valid frame at timing hypotheses: the starts of accepted users
        // (tags share coarse timing) and the search-window origin, each
        // scanned over ±1 chip.
        accepted_starts.clear();
        for (c, k) in accepted.iter().enumerate() {
            if let Some(k) = k {
                accepted_starts.push(decoded[c][*k].detection.start);
            }
        }
        // The hypothesis set (accepted starts + window origin) and the
        // ±1-chip offsets derived from it are identical for every still-
        // missing code, so they are built once, in arena storage.
        accepted_starts.push(window_start + back);
        probe_offsets.clear();
        for &h in accepted_starts.iter() {
            for d in 0..=(2 * spc) {
                let off = (h + d).saturating_sub(spc);
                if !probe_offsets.contains(&off) {
                    probe_offsets.push(off);
                }
            }
        }
        for c in 0..decoded.len() {
            if accepted[c].is_some() {
                continue;
            }
            'probe: for &off in probe_offsets.iter() {
                telemetry.probes_attempted += 1;
                let Some(det) = self.detector.probe(samples, off, c) else {
                    continue;
                };
                // The probe must still clear the user-detection threshold
                // (§III-B's "predetermined threshold") — this is the
                // receiver's near-far limit: a tag far below the aggregate
                // received energy is undetectable until power control
                // equalizes the group.
                if det.correlation < self.detector.threshold() {
                    continue;
                }
                let (outcome, bits) =
                    self.decoders[c].decode_frame_with_bits(samples, det.start, det.channel_gain);
                if let Some(frame) = outcome.frame() {
                    let duplicate = claimed
                        .iter()
                        .any(|(oc, p)| *oc != c && p.as_slice() == frame.payload());
                    if !duplicate {
                        claimed.push((c, frame.payload().to_vec()));
                        // Record as an extra accepted candidate.
                        decoded[c].push(DecodedUser {
                            detection: det,
                            outcome,
                            bits,
                        });
                        accepted[c] = Some(decoded[c].len() - 1);
                        break 'probe;
                    }
                }
            }
        }

        // The report owns its users, so moving them out is the one
        // unavoidable (output-proportional) allocation of the frame path.
        // `swap_remove` leaves the arena lists intact for the next
        // capture's clear-and-refill.
        let mut users = Vec::new();
        let mut ack = AckMessage::new();
        for (c, cands) in decoded.iter_mut().enumerate() {
            if cands.is_empty() {
                continue;
            }
            if let Some(k) = accepted[c] {
                ack.insert(c as u32);
                users.push(cands.swap_remove(k));
            } else {
                // No acceptable frame: report the strongest candidate,
                // marking valid-but-duplicate decodes as alias suppressed.
                let mut strongest = cands.swap_remove(0);
                if strongest.outcome.is_frame() {
                    telemetry.aliases_suppressed += 1;
                    strongest.outcome =
                        DecodeOutcome::Invalid(cbma_types::CbmaError::MalformedFrame(
                            "suppressed as a cross-code alias of a stronger user".into(),
                        ));
                }
                users.push(strongest);
            }
        }
        telemetry.decode_ns = stage_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        RxReport {
            frame_detected: true,
            users,
            ack,
            telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbma_codes::{CodeFamily, GoldFamily, TwoNcFamily};
    use cbma_tag::Tag;
    use cbma_types::geometry::Point;

    fn clean_capture(envelopes: &[(Vec<f64>, Iq, usize)], lead: usize) -> Vec<Iq> {
        let total = lead
            + envelopes
                .iter()
                .map(|(e, _, d)| e.len() + d)
                .max()
                .unwrap_or(0)
            + 64;
        let mut buf = vec![Iq::ZERO; total];
        for (env, gain, delay) in envelopes {
            for (i, &e) in env.iter().enumerate() {
                buf[lead + delay + i] += gain.scale(e);
            }
        }
        buf
    }

    #[test]
    fn single_tag_end_to_end() {
        let phy = PhyProfile::paper_default();
        let codes = GoldFamily::new(5).unwrap().codes(3).unwrap();
        let mut tag = Tag::new(1, Point::ORIGIN, codes[1].clone());
        let env = tag.transmit(b"temperature=21".to_vec(), &phy).unwrap();
        let buf = clean_capture(&[(env, Iq::from_polar(0.01, 0.4), 0)], 400);
        let mut rx = Receiver::new(codes, phy, ReceiverConfig::default());
        let report = rx.receive(&buf);
        assert!(report.frame_detected);
        assert_eq!(report.ack.len(), 1);
        assert!(report.ack.acknowledges(1));
        let frames = report.frames();
        assert_eq!(frames[0].1.payload(), b"temperature=21");
    }

    #[test]
    fn three_tag_collision_all_decoded() {
        let phy = PhyProfile::paper_default();
        let codes = TwoNcFamily::new(5).unwrap().codes(5).unwrap();
        let mut envs = Vec::new();
        for (i, delay) in [(0usize, 0usize), (2, 5), (4, 11)] {
            let mut tag = Tag::new(i as u32, Point::ORIGIN, codes[i].clone());
            let env = tag
                .transmit(format!("tag {i} says hi").into_bytes(), &phy)
                .unwrap();
            let phase = 0.9 * i as f64;
            envs.push((env, Iq::from_polar(0.01, phase), delay));
        }
        let buf = clean_capture(&envs, 400);
        // Coherent mode: phase-diverse equal-power collisions are the
        // coherent receiver's home turf (the envelope mode's near-far
        // behaviour is exercised by the simulation tests).
        let config = ReceiverConfig {
            decoder_kind: DecoderKind::Coherent,
            ..ReceiverConfig::default()
        };
        let mut rx = Receiver::new(codes, phy, config);
        let report = rx.receive(&buf);
        assert!(report.ack.acknowledges(0), "{report:?}");
        assert!(report.ack.acknowledges(2));
        assert!(report.ack.acknowledges(4));
        assert!(!report.ack.acknowledges(1));
        assert!(!report.ack.acknowledges(3));
    }

    #[test]
    fn silence_reports_nothing() {
        let phy = PhyProfile::paper_default();
        let codes = GoldFamily::new(5).unwrap().codes(2).unwrap();
        let mut rx = Receiver::new(codes, phy, ReceiverConfig::default());
        let report = rx.receive(&vec![Iq::new(1e-6, 0.0); 4000]);
        assert!(!report.frame_detected);
        assert!(report.users.is_empty());
        assert!(report.ack.is_empty());
    }

    #[test]
    fn detected_ids_lists_detections() {
        let phy = PhyProfile::paper_default();
        let codes = GoldFamily::new(5).unwrap().codes(2).unwrap();
        let mut tag = Tag::new(0, Point::ORIGIN, codes[0].clone());
        let env = tag.transmit(b"x".to_vec(), &phy).unwrap();
        let buf = clean_capture(&[(env, Iq::new(0.01, 0.0), 0)], 400);
        let mut rx = Receiver::new(codes, phy, ReceiverConfig::default());
        let report = rx.receive(&buf);
        assert_eq!(report.detected_ids(), vec![0]);
    }

    #[test]
    fn sic_recovers_a_buried_weak_user() {
        let phy = PhyProfile::paper_default();
        let codes = TwoNcFamily::new(4).unwrap().codes(4).unwrap();
        let mut strong = Tag::new(0, Point::ORIGIN, codes[0].clone());
        let mut weak = Tag::new(1, Point::ORIGIN, codes[1].clone());
        let es = strong.transmit(b"strong tag".to_vec(), &phy).unwrap();
        let ew = weak.transmit(b"weak tag!!".to_vec(), &phy).unwrap();
        // 30 dB of power imbalance: the weak preamble correlation sits far
        // below the detection threshold until the strong user is
        // cancelled.
        let buf = clean_capture(
            &[
                (es, Iq::from_polar(0.02, 0.4), 0),
                (ew, Iq::from_polar(0.00063, 2.0), 3),
            ],
            400,
        );
        let mut base = Receiver::new(codes.clone(), phy, ReceiverConfig::default());
        let without = base.receive(&buf);
        assert!(without.ack.acknowledges(0));
        assert!(
            !without.ack.acknowledges(1),
            "weak tag should be invisible without SIC: {without:?}"
        );
        let config = ReceiverConfig {
            sic_passes: 1,
            ..ReceiverConfig::default()
        };
        let mut rx = Receiver::new(codes, phy, config);
        let with = rx.receive(&buf);
        assert!(with.ack.acknowledges(0));
        assert!(with.ack.acknowledges(1), "SIC should reveal the weak tag");
        let frames = with.frames();
        let weak_frame = frames.iter().find(|(id, _)| *id == 1).unwrap();
        assert_eq!(weak_frame.1.payload(), b"weak tag!!");
    }

    #[test]
    fn telemetry_fills_stage_spans_and_domain_counts() {
        let phy = PhyProfile::paper_default();
        let codes = GoldFamily::new(5).unwrap().codes(3).unwrap();
        let mut tag = Tag::new(1, Point::ORIGIN, codes[1].clone());
        let env = tag.transmit(b"telemetry".to_vec(), &phy).unwrap();
        let buf = clean_capture(&[(env, Iq::from_polar(0.01, 0.4), 0)], 400);
        let mut rx = Receiver::new(codes, phy, ReceiverConfig::default());
        let report = rx.receive(&buf);
        let t = &report.telemetry;
        assert!(report.frame_detected);
        assert!(t.candidates_evaluated >= 1, "{t:?}");
        assert!(t.peak_correlation > 0.0, "{t:?}");
        assert!(t.peak_margin >= 0.0, "{t:?}");
        // Monotonic spans are non-zero for stages that did real work.
        assert!(t.frame_sync_ns > 0, "{t:?}");
        assert!(t.user_detect_ns > 0, "{t:?}");
        assert!(t.decode_ns > 0, "{t:?}");
        // SIC disabled by default.
        assert_eq!(t.sic_iterations, 0);
        assert_eq!(t.sic_ns, 0);
    }

    #[test]
    fn telemetry_silence_still_times_frame_sync() {
        let phy = PhyProfile::paper_default();
        let codes = GoldFamily::new(5).unwrap().codes(2).unwrap();
        let mut rx = Receiver::new(codes, phy, ReceiverConfig::default());
        let report = rx.receive(&vec![Iq::new(1e-6, 0.0); 4000]);
        assert!(!report.frame_detected);
        assert!(report.telemetry.frame_sync_ns > 0);
        assert_eq!(report.telemetry.user_detect_ns, 0);
        assert_eq!(report.telemetry.candidates_evaluated, 0);
        assert_eq!(report.telemetry.peak_correlation, 0.0);
    }

    #[test]
    fn attached_registry_records_rx_metrics() {
        let phy = PhyProfile::paper_default();
        let codes = GoldFamily::new(5).unwrap().codes(3).unwrap();
        let mut tag = Tag::new(1, Point::ORIGIN, codes[1].clone());
        let env = tag.transmit(b"metrics".to_vec(), &phy).unwrap();
        let buf = clean_capture(&[(env, Iq::from_polar(0.01, 0.4), 0)], 400);
        let registry = MetricsRegistry::new();
        let mut rx = Receiver::new(codes, phy, ReceiverConfig::default());
        rx.attach_metrics(&registry);
        let report = rx.receive(&buf);
        assert!(report.ack.acknowledges(1));
        let snap = registry.snapshot();
        assert_eq!(snap.counters["cbma.rx.captures"], 1);
        assert_eq!(snap.counters["cbma.rx.frames_detected"], 1);
        assert_eq!(snap.counters["cbma.rx.users_decoded"], 1);
        assert!(snap.counters["cbma.rx.candidates"] >= 1);
        let sync = &snap.histograms["cbma.rx.stage.frame_sync_ns"];
        assert_eq!(sync.count, 1);
        assert!(sync.sum > 0);
        assert_eq!(snap.histograms["cbma.rx.stage.decode_ns"].count, 1);
        assert_eq!(snap.histograms["cbma.rx.peak_margin_milli"].count, 1);
    }

    #[test]
    fn sic_telemetry_reports_iterations_and_recovery() {
        let phy = PhyProfile::paper_default();
        let codes = TwoNcFamily::new(4).unwrap().codes(4).unwrap();
        let mut strong = Tag::new(0, Point::ORIGIN, codes[0].clone());
        let mut weak = Tag::new(1, Point::ORIGIN, codes[1].clone());
        let es = strong.transmit(b"strong tag".to_vec(), &phy).unwrap();
        let ew = weak.transmit(b"weak tag!!".to_vec(), &phy).unwrap();
        let buf = clean_capture(
            &[
                (es, Iq::from_polar(0.02, 0.4), 0),
                (ew, Iq::from_polar(0.00063, 2.0), 3),
            ],
            400,
        );
        let config = ReceiverConfig {
            sic_passes: 2,
            ..ReceiverConfig::default()
        };
        let mut rx = Receiver::new(codes, phy, config);
        let report = rx.receive(&buf);
        let t = &report.telemetry;
        assert!(t.sic_iterations >= 1, "{t:?}");
        assert!(t.sic_ns > 0, "{t:?}");
        assert_eq!(t.sic_recovered, 1, "{t:?}");
        assert!(t.sic_residual_energy > 0.0, "{t:?}");
    }

    #[test]
    fn attached_tracer_records_capture_span_tree() {
        let phy = PhyProfile::paper_default();
        let codes = GoldFamily::new(5).unwrap().codes(3).unwrap();
        let mut tag = Tag::new(1, Point::ORIGIN, codes[1].clone());
        let env = tag.transmit(b"trace me".to_vec(), &phy).unwrap();
        let buf = clean_capture(&[(env, Iq::from_polar(0.01, 0.4), 0)], 400);
        let tracer = Tracer::new(1024);
        let mut rx = Receiver::new(codes, phy, ReceiverConfig::default());
        rx.attach_tracer(&tracer);
        let report = rx.receive(&buf);
        assert!(report.ack.acknowledges(1));

        let spans = tracer.spans();
        let capture = spans
            .iter()
            .find(|s| s.name == "capture")
            .expect("capture root span");
        assert_eq!(capture.parent, 0, "capture is a root span");
        let stage = |name: &str| {
            spans
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("{name} span missing"))
        };
        for name in ["frame_sync", "user_detect", "decode"] {
            assert_eq!(stage(name).parent, capture.span, "{name} under capture");
            assert_eq!(stage(name).trace, capture.trace);
        }
        // One correlate kernel span per code, nested under user_detect.
        let correlates: Vec<_> = spans.iter().filter(|s| s.name == "correlate").collect();
        assert_eq!(correlates.len(), 3);
        for (k, c) in correlates.iter().enumerate() {
            assert_eq!(c.parent, stage("user_detect").span);
            assert_eq!(c.arg, Some(k as u64));
        }
        // Sibling stages do not overlap (sequential pipeline).
        let fs = stage("frame_sync");
        let ud = stage("user_detect");
        let de = stage("decode");
        assert!(fs.start_ns + fs.dur_ns <= ud.start_ns);
        assert!(ud.start_ns + ud.dur_ns <= de.start_ns);
        // A second receive starts a fresh trace.
        rx.receive(&buf);
        let traces: std::collections::BTreeSet<u64> =
            tracer.spans().iter().map(|s| s.trace).collect();
        assert_eq!(traces.len(), 2);
    }

    #[test]
    fn set_trace_parent_nests_capture_under_external_span() {
        let phy = PhyProfile::paper_default();
        let codes = GoldFamily::new(5).unwrap().codes(2).unwrap();
        let tracer = Tracer::new(256);
        let mut rx = Receiver::new(codes, phy, ReceiverConfig::default());
        rx.attach_tracer(&tracer);
        let trace = tracer.new_trace();
        let round = tracer.span(trace, None, "round");
        rx.set_trace_parent(trace, round.id());
        rx.receive(&vec![Iq::new(1e-6, 0.0); 4000]);
        round.finish();
        let spans = tracer.spans();
        let capture = spans.iter().find(|s| s.name == "capture").unwrap();
        let round = spans.iter().find(|s| s.name == "round").unwrap();
        assert_eq!(capture.parent, round.span);
        assert_eq!(capture.trace, round.trace);
        // The parent is consumed: the next capture is a fresh root trace.
        rx.receive(&vec![Iq::new(1e-6, 0.0); 4000]);
        let spans = tracer.spans();
        let roots: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "capture" && s.parent == 0)
            .collect();
        assert_eq!(roots.len(), 1);
        assert_ne!(roots[0].trace, round.trace);
    }

    #[test]
    fn code_count_accessor() {
        let phy = PhyProfile::paper_default();
        let codes = GoldFamily::new(5).unwrap().codes(7).unwrap();
        let rx = Receiver::new(codes, phy, ReceiverConfig::default());
        assert_eq!(rx.code_count(), 7);
        assert_eq!(rx.phy().preamble_bits, 8);
    }
}
