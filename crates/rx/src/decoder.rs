//! Correlation decoding (§III-B).
//!
//! For each detected user the decoder walks the frame bit by bit. Every
//! bit occupies one code word of chips (`spreading factor × samples/chip`
//! samples); correlating the window against the user's bipolar code gives
//! a complex statistic whose sign — after derotating by the channel-gain
//! estimate ĝ from the preamble — separates the code word (bit 1) from
//! its complement (bit 0). This is the paper's rule "if the correlation
//! with the PN sequence representing '1' is higher than that with the PN
//! sequence representing '0', the chip is decoded to '1'": with complement
//! signalling those two correlations are negatives of each other, so the
//! comparison is exactly the sign test.
//!
//! The decoder first recovers the length byte, then decodes only the bits
//! the length field implies, and finally verifies the CRC.

use cbma_codes::PnCode;
use cbma_dsp::correlate::correlate_iq_bipolar;
use cbma_dsp::resample::upsample_repeat;
use cbma_tag::frame::{Frame, MAX_PAYLOAD};
use cbma_tag::phy::PhyProfile;
use cbma_types::{Bits, CbmaError, Iq, Result};

/// Which decision statistic the decoder (and user detector) run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DecoderKind {
    /// The paper's receiver (§V-B, Algorithm 1 line 1): compute the
    /// envelope P(t) = √(I² + Q²) first, then correlate the mean-removed
    /// envelope against the code. Needs no channel estimate, but a weak
    /// tag's contribution to the aggregate envelope is scaled by the
    /// (drifting) phase difference to the dominant tag — the near-far
    /// fragility Table II documents. Used by the Table II bench and the
    /// receiver-ablation bench.
    Envelope,
    /// Coherent IQ decoding with a preamble-derived channel estimate and
    /// decision-directed phase tracking — the library's recommended
    /// receiver: flat near-far response and immunity to the inter-tag
    /// subcarrier beat, at the cost of per-user channel estimation.
    #[default]
    Coherent,
}

/// The result of decoding one user's frame.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeOutcome {
    /// Frame recovered and CRC verified.
    Frame(Frame),
    /// Bits were recovered but the frame failed validation.
    Invalid(CbmaError),
    /// The buffer ended before the frame did.
    Truncated,
}

impl DecodeOutcome {
    /// Whether decoding produced a valid frame.
    pub fn is_frame(&self) -> bool {
        matches!(self, DecodeOutcome::Frame(_))
    }

    /// The decoded frame, if any.
    pub fn frame(&self) -> Option<&Frame> {
        match self {
            DecodeOutcome::Frame(f) => Some(f),
            _ => None,
        }
    }
}

/// A per-user correlation decoder.
#[derive(Debug)]
pub struct Decoder {
    /// Bipolar one-word reference at sample rate.
    reference: Vec<f64>,
    preamble_bits: usize,
    kind: DecoderKind,
}

impl Decoder {
    /// Creates the default (coherent, phase-tracking) decoder for one
    /// user's code.
    pub fn new(code: &PnCode, phy: &PhyProfile) -> Decoder {
        Decoder::with_kind(code, phy, DecoderKind::Coherent)
    }

    /// Creates a decoder with an explicit decision statistic.
    pub fn with_kind(code: &PnCode, phy: &PhyProfile, kind: DecoderKind) -> Decoder {
        Decoder {
            reference: upsample_repeat(code.bipolar_one(), phy.samples_per_chip()),
            preamble_bits: phy.preamble_bits,
            kind,
        }
    }

    /// The decision statistic in use.
    #[inline]
    pub fn kind(&self) -> DecoderKind {
        self.kind
    }

    /// Samples per data bit.
    #[inline]
    pub fn samples_per_bit(&self) -> usize {
        self.reference.len()
    }

    /// Decodes `n_bits` starting at `start`, derotated by `gain`.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::ShapeMismatch`] if the buffer ends first.
    pub fn decode_bits(
        &self,
        samples: &[Iq],
        start: usize,
        n_bits: usize,
        gain: Iq,
    ) -> Result<Bits> {
        let w = self.reference.len();
        let needed = start + n_bits * w;
        if needed > samples.len() {
            return Err(CbmaError::ShapeMismatch {
                expected: format!("{needed} samples"),
                actual: format!("{} samples", samples.len()),
            });
        }
        let mut bits = Bits::with_capacity(n_bits);
        // Decision-directed channel tracking: the tag's residual
        // subcarrier offset rotates the phase over the frame, so the
        // preamble estimate alone would go stale; each decided bit
        // refreshes it. α trades tracking speed against noise.
        let mut g = gain;
        let ref_sum: f64 = self.reference.iter().sum();
        let n_ref = self.reference.len() as f64;
        let alpha = 0.45;
        for k in 0..n_bits {
            let window = &samples[start + k * w..start + (k + 1) * w];
            let statistic = match self.kind {
                DecoderKind::Coherent => {
                    let corr = correlate_iq_bipolar(window, &self.reference);
                    let stat = (corr * g.conj()).re;
                    // Per-bit gain observation: for bit b the expected
                    // correlation is g·(±n + Σref)/2, so invert with the
                    // decided sign.
                    let scale = if stat >= 0.0 {
                        (n_ref + ref_sum) / 2.0
                    } else {
                        (ref_sum - n_ref) / 2.0
                    };
                    if scale.abs() > 1e-9 {
                        let observed = corr / scale;
                        g = g.scale(1.0 - alpha) + observed.scale(alpha);
                    }
                    stat
                }
                DecoderKind::Envelope => {
                    // §V-B: P(t) = √(I² + Q²); correlate the mean-removed
                    // envelope against the bipolar code word.
                    let mean = window.iter().map(|s| s.abs()).sum::<f64>() / w as f64;
                    window
                        .iter()
                        .zip(&self.reference)
                        .map(|(s, &r)| (s.abs() - mean) * r)
                        .sum()
                }
            };
            bits.push(u8::from(statistic >= 0.0));
        }
        Ok(bits)
    }

    /// Decodes a complete frame starting at `start` (the position user
    /// detection aligned to), using the channel estimate `gain`.
    ///
    /// Decodes the header first, reads the length byte, then decodes
    /// exactly the implied number of remaining bits.
    pub fn decode_frame(&self, samples: &[Iq], start: usize, gain: Iq) -> DecodeOutcome {
        self.decode_frame_with_bits(samples, start, gain).0
    }

    /// Like [`decode_frame`](Decoder::decode_frame) but also returns the
    /// raw decoded bit stream (preamble + length + whatever body was
    /// recovered) — the hook bit-error-rate instrumentation uses, since a
    /// CRC-failed frame still carries measurable bits.
    pub fn decode_frame_with_bits(
        &self,
        samples: &[Iq],
        start: usize,
        gain: Iq,
    ) -> (DecodeOutcome, Option<Bits>) {
        // Header: preamble + 8-bit length field.
        let header_bits = self.preamble_bits + 8;
        let header = match self.decode_bits(samples, start, header_bits, gain) {
            Ok(b) => b,
            Err(_) => return (DecodeOutcome::Truncated, None),
        };
        let len_byte = (self.preamble_bits..header_bits)
            .fold(0usize, |acc, i| (acc << 1) | header[i] as usize);
        if len_byte > MAX_PAYLOAD {
            return (
                DecodeOutcome::Invalid(CbmaError::MalformedFrame(format!(
                    "length field {len_byte} exceeds maximum payload {MAX_PAYLOAD}"
                ))),
                Some(header),
            );
        }
        let tail_bits = len_byte * 8 + 16;
        let tail = match self.decode_bits(
            samples,
            start + header_bits * self.reference.len(),
            tail_bits,
            gain,
        ) {
            Ok(b) => b,
            Err(_) => return (DecodeOutcome::Truncated, Some(header)),
        };
        let mut all = header;
        all.extend_bits(&tail);
        let outcome = match Frame::from_bits(&all, self.preamble_bits) {
            Ok(frame) => DecodeOutcome::Frame(frame),
            Err(e) => DecodeOutcome::Invalid(e),
        };
        (outcome, Some(all))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbma_codes::{CodeFamily, GoldFamily, TwoNcFamily};
    use cbma_tag::encoder::spread;
    use cbma_tag::modulator::ook_envelope;

    fn phy() -> PhyProfile {
        PhyProfile::paper_default()
    }

    fn tx(code: &PnCode, frame: &Frame, gain: Iq, lead: usize) -> Vec<Iq> {
        let p = phy();
        let env = ook_envelope(
            &spread(&frame.to_bits(p.preamble_bits), code),
            p.samples_per_chip(),
        );
        let mut buf = vec![Iq::ZERO; lead];
        buf.extend(env.iter().map(|&e| gain.scale(e)));
        buf.extend(vec![Iq::ZERO; 32]);
        buf
    }

    #[test]
    fn clean_single_user_decode() {
        let code = GoldFamily::new(5).unwrap().code(0).unwrap();
        let frame = Frame::new(b"hello cbma".to_vec()).unwrap();
        let gain = Iq::from_polar(0.01, 0.7);
        let buf = tx(&code, &frame, gain, 50);
        let dec = Decoder::new(&code, &phy());
        let out = dec.decode_frame(&buf, 50, gain);
        assert_eq!(out.frame().unwrap(), &frame);
    }

    #[test]
    fn coherent_decode_requires_phase_reference() {
        // With a deliberately wrong (opposite) phase reference every bit
        // inverts, so the preamble check fails — demonstrating why the
        // coherent decoder needs the channel estimate.
        let code = GoldFamily::new(5).unwrap().code(0).unwrap();
        let frame = Frame::new(b"x".to_vec()).unwrap();
        let gain = Iq::new(0.01, 0.0);
        let buf = tx(&code, &frame, gain, 10);
        let dec = Decoder::with_kind(&code, &phy(), DecoderKind::Coherent);
        let out = dec.decode_frame(&buf, 10, -gain);
        assert!(!out.is_frame());
    }

    #[test]
    fn envelope_decode_ignores_phase() {
        // The envelope decoder needs no channel estimate at all: an
        // arbitrary (even wrong) gain argument leaves the decode intact.
        let code = GoldFamily::new(5).unwrap().code(0).unwrap();
        let frame = Frame::new(b"x".to_vec()).unwrap();
        let gain = Iq::from_polar(0.01, 2.1);
        let buf = tx(&code, &frame, gain, 10);
        let dec = Decoder::with_kind(&code, &phy(), DecoderKind::Envelope);
        assert_eq!(dec.kind(), DecoderKind::Envelope);
        let out = dec.decode_frame(&buf, 10, -gain);
        assert_eq!(out.frame().unwrap(), &frame);
    }

    #[test]
    fn two_user_collision_decodes_both() {
        let family = TwoNcFamily::new(4).unwrap();
        let ca = family.code(0).unwrap();
        let cb = family.code(1).unwrap();
        let fa = Frame::new(b"tag a".to_vec()).unwrap();
        let fb = Frame::new(b"tag b data".to_vec()).unwrap();
        let ga = Iq::from_polar(0.01, 0.3);
        let gb = Iq::from_polar(0.012, -1.2);
        let a = tx(&ca, &fa, ga, 20);
        let b = tx(&cb, &fb, gb, 20);
        let n = a.len().max(b.len());
        let mut buf = vec![Iq::ZERO; n];
        for (i, s) in a.into_iter().enumerate() {
            buf[i] += s;
        }
        for (i, s) in b.into_iter().enumerate() {
            buf[i] += s;
        }
        let pa = Decoder::new(&ca, &phy()).decode_frame(&buf, 20, ga);
        let pb = Decoder::new(&cb, &phy()).decode_frame(&buf, 20, gb);
        assert_eq!(pa.frame().unwrap(), &fa, "tag a failed under collision");
        assert_eq!(pb.frame().unwrap(), &fb, "tag b failed under collision");
    }

    #[test]
    fn truncated_buffer_is_reported() {
        let code = GoldFamily::new(5).unwrap().code(0).unwrap();
        let frame = Frame::new(vec![0; 20]).unwrap();
        let gain = Iq::new(0.01, 0.0);
        let buf = tx(&code, &frame, gain, 0);
        let dec = Decoder::new(&code, &phy());
        let out = dec.decode_frame(&buf[..buf.len() / 2], 0, gain);
        assert_eq!(out, DecodeOutcome::Truncated);
    }

    #[test]
    fn empty_payload_frame_decodes() {
        let code = GoldFamily::new(5).unwrap().code(1).unwrap();
        let frame = Frame::new(Vec::new()).unwrap();
        let gain = Iq::new(0.02, 0.0);
        let buf = tx(&code, &frame, gain, 5);
        let out = Decoder::new(&code, &phy()).decode_frame(&buf, 5, gain);
        assert_eq!(out.frame().unwrap().payload(), &[] as &[u8]);
    }

    #[test]
    fn samples_per_bit_matches_profile() {
        let code = GoldFamily::new(5).unwrap().code(0).unwrap();
        let dec = Decoder::new(&code, &phy());
        assert_eq!(dec.samples_per_bit(), 31 * 8);
    }

    #[test]
    fn decode_bits_out_of_range_errors() {
        let code = GoldFamily::new(5).unwrap().code(0).unwrap();
        let dec = Decoder::new(&code, &phy());
        assert!(matches!(
            dec.decode_bits(&[Iq::ZERO; 100], 0, 5, Iq::ONE),
            Err(CbmaError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn outcome_helpers() {
        let out = DecodeOutcome::Truncated;
        assert!(!out.is_frame());
        assert!(out.frame().is_none());
    }
}
