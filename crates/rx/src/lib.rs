//! The CBMA receiver.
//!
//! Implements the receiving process of §III-B on the simulated IQ stream:
//!
//! 1. **Frame synchronization** ([`frame_sync`]) — sliding-window energy
//!    detection with a moving-average floor estimate and a +3 dB
//!    comparator threshold,
//! 2. **User detection** ([`user_detect`]) — cross-correlation of every
//!    known PN code's spread preamble against the received frame head;
//!    codes whose correlation clears a threshold are declared present,
//! 3. **Decoding** ([`decoder`]) — per-bit correlation against the
//!    detected user's code, with the channel phase estimated from the
//!    preamble so the complement-signalling decision reduces to a sign
//!    test ("if the correlation with the PN sequence representing '1' is
//!    higher than that with the PN sequence representing '0', the chip is
//!    decoded to '1'"),
//! 4. **Acknowledgement** ([`ack`]) — the broadcast ACK listing the
//!    successfully decoded tag ids, which drives the tags' power control.
//!
//! [`receiver`] chains the four stages behind one call; [`runtime`] runs
//! the same four stages as a pipelined streaming flowgraph over bounded
//! ring buffers, decision-identical to the monolithic call at every
//! block size.
//!
//! # Examples
//!
//! See [`receiver::Receiver`] for an end-to-end decode example and
//! [`runtime::RxFlowgraph`] for the streaming form.

pub mod ack;
pub mod decoder;
pub mod downlink;
pub mod frame_sync;
pub mod receiver;
pub mod runtime;
pub mod sic;
pub mod stream_pool;
pub mod user_detect;

pub use ack::AckMessage;
pub use decoder::{DecodeOutcome, Decoder, DecoderKind};
pub use downlink::AckWire;
pub use frame_sync::{FrameSync, SyncStream};
pub use receiver::{Receiver, ReceiverConfig, RxReport, RxScratch, RxTelemetry};
pub use runtime::{
    CaptureSource, FlowgraphError, MultiStreamFlowgraph, RunOutput, RunStats, RuntimeConfig,
    RxFlowgraph, SampleSource, Scheduler, SourceBlock, StageKind,
};
pub use stream_pool::{InOrderEmitter, StreamPool, StreamPoolConfig, StreamResult};
pub use user_detect::{
    CorrelationPath, DetectScratch, DetectedUser, MultiDetectScratch, UserDetector,
    FFT_LAG_CROSSOVER,
};
