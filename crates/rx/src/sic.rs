//! Successive interference cancellation (SIC) — a reproduction extension.
//!
//! The paper resolves the near-far problem at the *transmitter* (tag
//! impedance power control, Algorithm 1). The classic receiver-side
//! complement is SIC: once a strong user's frame is decoded, its waveform
//! can be reconstructed and subtracted, after which previously-buried weak
//! users become detectable. This module implements one cancellation pass:
//!
//! 1. re-spread the decoded frame to its OOK chip envelope,
//! 2. estimate the complex channel *per bit window* by least squares
//!    against the received samples (piecewise estimation tracks the
//!    inter-tag subcarrier beat that a single gain could not),
//! 3. subtract the reconstruction from the buffer.
//!
//! `ReceiverConfig::sic_passes` enables it; the `ablation_sic` bench
//! quantifies the benefit.

use cbma_codes::PnCode;
use cbma_dsp::resample::upsample_repeat;
use cbma_dsp::simd;
use cbma_dsp::xcorr::RunningEnergy;
use cbma_tag::encoder::spread;
use cbma_tag::frame::Frame;
use cbma_tag::phy::PhyProfile;
use cbma_types::Iq;

/// Reconstructs a decoded user's OOK envelope at the receiver sample
/// rate: frame → bits → chips → envelope.
pub fn reconstruct_envelope(frame: &Frame, code: &PnCode, phy: &PhyProfile) -> Vec<f64> {
    let bits = frame.to_bits(phy.preamble_bits);
    let chips = spread(&bits, code);
    let per_chip: Vec<f64> = chips.iter().map(f64::from).collect();
    upsample_repeat(&per_chip, phy.samples_per_chip())
}

/// Subtracts a decoded user's contribution from `samples` in place.
///
/// The reconstruction is fit window-by-window (one code word per window)
/// by complex least squares: ĝ = ⟨s, e⟩ / ⟨e, e⟩ over the window, which
/// absorbs the per-window phase drift of the tag's subcarrier beat.
/// Windows where the envelope carries no energy (all-zero chips) are left
/// untouched.
///
/// Returns the mean cancelled power per affected sample (diagnostic).
pub fn cancel_user(samples: &mut [Iq], start: usize, envelope: &[f64], window: usize) -> f64 {
    cancel_user_in(samples, start, envelope, window, &mut RunningEnergy::default())
}

/// [`cancel_user`] with a caller-owned prefix-sum arena: `env_energy` is
/// rebuilt in place (grow-only) instead of allocated per capture, so a
/// receiver cancelling users every capture performs no SIC-side heap
/// traffic beyond the reconstruction itself.
pub fn cancel_user_in(
    samples: &mut [Iq],
    start: usize,
    envelope: &[f64],
    window: usize,
    env_energy: &mut RunningEnergy,
) -> f64 {
    assert!(window > 0, "window must be non-zero");
    // One prefix-sum pass over the envelope gives every window's ⟨e, e⟩
    // in O(1) instead of a per-window summation.
    env_energy.rebuild_real(envelope);
    let mut cancelled_power = 0.0;
    let mut affected = 0usize;
    let mut pos = 0usize;
    while pos < envelope.len() {
        let end = (pos + window).min(envelope.len());
        let s_lo = start + pos;
        if s_lo >= samples.len() {
            break;
        }
        let s_hi = (start + end).min(samples.len());
        let seg_env = &envelope[pos..pos + (s_hi - s_lo)];
        let seg = &mut samples[s_lo..s_hi];

        let energy = env_energy.power(pos, s_hi - s_lo);
        if energy > 0.0 {
            let gain = simd::dot_iq_real(seg, seg_env) / energy;
            // Σ|gain·e|² = |gain|²·Σe², so the cancelled power needs no
            // per-sample accumulation.
            cancelled_power += gain.power() * energy;
            simd::subtract_scaled_real(seg, seg_env, gain);
            affected += seg_env.len();
        }
        pos = end;
    }
    if affected == 0 {
        0.0
    } else {
        cancelled_power / affected as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbma_codes::{CodeFamily, TwoNcFamily};
    use cbma_types::geometry::Point;

    fn phy() -> PhyProfile {
        PhyProfile::paper_default()
    }

    fn tx(frame: &Frame, code: &PnCode, gain: Iq, lead: usize) -> Vec<Iq> {
        let env = reconstruct_envelope(frame, code, &phy());
        let mut buf = vec![Iq::ZERO; lead];
        buf.extend(env.iter().map(|&e| gain.scale(e)));
        buf.extend(vec![Iq::ZERO; 32]);
        buf
    }

    #[test]
    fn reconstruction_matches_tag_transmit_path() {
        let code = TwoNcFamily::new(4).unwrap().code(1).unwrap();
        let frame = Frame::new(b"reconstruct me".to_vec()).unwrap();
        let mut tag = cbma_tag::Tag::new(1, Point::ORIGIN, code.clone());
        let via_tag = tag.transmit(b"reconstruct me".to_vec(), &phy()).unwrap();
        let via_sic = reconstruct_envelope(&frame, &code, &phy());
        assert_eq!(via_tag, via_sic);
    }

    #[test]
    fn cancelling_a_clean_user_leaves_near_silence() {
        let code = TwoNcFamily::new(4).unwrap().code(0).unwrap();
        let frame = Frame::new(vec![7; 6]).unwrap();
        let gain = Iq::from_polar(0.02, 1.2);
        let mut buf = tx(&frame, &code, gain, 40);
        let env = reconstruct_envelope(&frame, &code, &phy());
        let window = code.len() * phy().samples_per_chip();
        cancel_user(&mut buf, 40, &env, window);
        let residual: f64 = buf.iter().map(|s| s.power()).sum();
        assert!(
            residual < 1e-12,
            "residual power {residual:e} after perfect cancellation"
        );
    }

    #[test]
    fn cancellation_tracks_a_phase_ramp() {
        // A beating tag (phase rotating across the frame) must still
        // cancel well thanks to per-window least squares.
        let code = TwoNcFamily::new(4).unwrap().code(2).unwrap();
        let frame = Frame::new(vec![0xAB; 8]).unwrap();
        let env = reconstruct_envelope(&frame, &code, &phy());
        let beat = 2e-4; // rad/sample
        let mut buf: Vec<Iq> = env
            .iter()
            .enumerate()
            .map(|(k, &e)| Iq::from_polar(0.02 * e, 0.5 + beat * k as f64))
            .collect();
        let before: f64 = buf.iter().map(|s| s.power()).sum();
        let window = code.len() * phy().samples_per_chip();
        cancel_user(&mut buf, 0, &env, window);
        let after: f64 = buf.iter().map(|s| s.power()).sum();
        assert!(
            after < before * 0.02,
            "cancellation removed only {:.1} % of the power",
            (1.0 - after / before) * 100.0
        );
    }

    #[test]
    fn cancellation_reveals_a_buried_weak_user() {
        let family = TwoNcFamily::new(4).unwrap();
        let strong_code = family.code(0).unwrap();
        let weak_code = family.code(1).unwrap();
        let strong = Frame::new(vec![1; 8]).unwrap();
        let weak = Frame::new(vec![2; 8]).unwrap();
        let strong_env = reconstruct_envelope(&strong, &strong_code, &phy());
        let weak_env = reconstruct_envelope(&weak, &weak_code, &phy());
        let n = strong_env.len().max(weak_env.len()) + 64;
        let mut buf = vec![Iq::ZERO; n];
        for (i, &e) in strong_env.iter().enumerate() {
            buf[i] += Iq::from_polar(0.05 * e, 0.3);
        }
        for (i, &e) in weak_env.iter().enumerate() {
            buf[i] += Iq::from_polar(0.001 * e, 2.0); // 34 dB below
        }
        let window = strong_code.len() * phy().samples_per_chip();
        cancel_user(&mut buf, 0, &strong_env, window);
        // After cancellation, the weak user dominates the residual.
        let weak_power = 0.001f64 * 0.001;
        let residual: f64 = buf.iter().map(|s| s.power()).sum::<f64>() / weak_env.len() as f64;
        assert!(
            residual < weak_power * 10.0,
            "residual {residual:e} still dominated by the strong user"
        );
    }

    #[test]
    fn out_of_range_start_is_harmless() {
        let mut buf = vec![Iq::ONE; 8];
        let cancelled = cancel_user(&mut buf, 100, &[1.0; 16], 4);
        assert_eq!(cancelled, 0.0);
        assert!(buf.iter().all(|s| (*s - Iq::ONE).abs() < 1e-12));
    }
}
