//! Multi-stream receive multiplexing.
//!
//! A deployment with several excitation sources (or several antenna
//! captures per round) produces N concurrent capture *streams* that all
//! share one code set. [`StreamPool`] multiplexes those streams onto a
//! small set of worker threads, each owning a private [`Receiver`] (and
//! therefore a private scratch arena — no locking on the hot path).
//! Workers pull captures from a shared queue in arrival order and
//! coalesce up to `coalesce_width` of them into one
//! [`Receiver::receive_coalesced`] call, so the multi-window correlation
//! engine shares its forward transforms, cached reference spectra and
//! twiddle tables across captures *from different streams*.
//!
//! Results are emitted per stream in submission order regardless of
//! which worker finished first: a small reorder buffer holds
//! out-of-order completions until their predecessors arrive.
//!
//! The pool runs each capture as one monolithic `receive` call. When
//! streams should instead flow through the four *pipelined* stages —
//! so a slow SIC pass on one stream overlaps sync/detect on another —
//! use [`crate::runtime::MultiStreamFlowgraph`], which generalizes this
//! pool onto the work-stealing scheduler
//! ([`crate::runtime::Scheduler::WorkStealing`]) with the same
//! per-stream in-order emission contract.

use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use cbma_codes::PnCode;
use cbma_tag::phy::PhyProfile;
use cbma_types::Iq;

use crate::receiver::{Receiver, ReceiverConfig, RxReport};

/// Tunable pool parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamPoolConfig {
    /// Worker threads (each owns a full [`Receiver`]). Clamped to ≥ 1.
    pub workers: usize,
    /// Maximum captures coalesced into one multi-window receive call.
    /// Clamped to ≥ 1; 1 disables coalescing (per-capture receives).
    pub coalesce_width: usize,
}

impl Default for StreamPoolConfig {
    fn default() -> StreamPoolConfig {
        StreamPoolConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            coalesce_width: 4,
        }
    }
}

/// One processed capture, tagged with its stream and per-stream sequence
/// number.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamResult {
    /// The stream the capture was submitted under.
    pub stream: usize,
    /// Per-stream submission index (0-based).
    pub seq: u64,
    /// The receiver's report for the capture.
    pub report: RxReport,
}

/// In-order `(stream, seq)` emission shared by [`StreamPool`] and the
/// streaming runtime's sink ([`crate::runtime::RxFlowgraph`]):
/// completions are buffered in whatever order workers finish and leave
/// per stream in submission order.
#[derive(Debug, Default)]
pub struct InOrderEmitter {
    /// Next seq to emit per stream.
    emit_next: Vec<u64>,
    /// Out-of-order completions awaiting their predecessors.
    reorder: BTreeMap<(usize, u64), RxReport>,
    emitted: usize,
}

impl InOrderEmitter {
    /// An emitter with no streams registered yet (streams grow on first
    /// [`InOrderEmitter::insert`] or [`InOrderEmitter::track`]).
    pub fn new() -> InOrderEmitter {
        InOrderEmitter::default()
    }

    /// Registers `stream`, growing the per-stream cursor table. Inserting
    /// does this implicitly; tracking up front lets a caller reserve
    /// stream slots before any completion arrives.
    pub fn track(&mut self, stream: usize) {
        if self.emit_next.len() <= stream {
            self.emit_next.resize(stream + 1, 0);
        }
    }

    /// Buffers one completion until its per-stream predecessors emit.
    pub fn insert(&mut self, stream: usize, seq: u64, report: RxReport) {
        self.track(stream);
        self.reorder.insert((stream, seq), report);
    }

    /// Results emitted so far (over the emitter's lifetime).
    #[inline]
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Completions buffered, still waiting on predecessors.
    #[inline]
    pub fn buffered(&self) -> usize {
        self.reorder.len()
    }

    /// Moves every in-order entry out of the reorder buffer, in
    /// `(stream, seq)` order.
    pub fn take_ready(&mut self) -> Vec<StreamResult> {
        let mut out = Vec::new();
        for stream in 0..self.emit_next.len() {
            while let Some(report) = self.reorder.remove(&(stream, self.emit_next[stream])) {
                out.push(StreamResult {
                    stream,
                    seq: self.emit_next[stream],
                    report,
                });
                self.emit_next[stream] += 1;
                self.emitted += 1;
            }
        }
        out
    }
}

/// One queued capture.
struct Job {
    stream: usize,
    seq: u64,
    capture: Vec<Iq>,
}

/// Worker-shared queue state.
struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    ready: Condvar,
}

/// A pool of receiver workers multiplexing N capture streams (see the
/// module docs).
///
/// # Examples
///
/// ```
/// use cbma_codes::{CodeFamily, GoldFamily};
/// use cbma_rx::{ReceiverConfig, StreamPool, StreamPoolConfig};
/// use cbma_tag::phy::PhyProfile;
/// use cbma_types::Iq;
///
/// let codes = GoldFamily::new(5)?.codes(2)?;
/// let mut pool = StreamPool::new(
///     codes,
///     PhyProfile::paper_default(),
///     ReceiverConfig::default(),
///     StreamPoolConfig { workers: 2, coalesce_width: 4 },
/// );
/// pool.submit(0, vec![Iq::ZERO; 2000]);
/// pool.submit(1, vec![Iq::ZERO; 2000]);
/// let results = pool.drain();
/// assert_eq!(results.len(), 2);
/// assert!(results.iter().all(|r| !r.report.frame_detected));
/// # Ok::<(), cbma_types::CbmaError>(())
/// ```
pub struct StreamPool {
    shared: Arc<Shared>,
    results: mpsc::Receiver<StreamResult>,
    workers: Vec<JoinHandle<()>>,
    /// Next submission seq per stream (grows on first use).
    next_seq: Vec<u64>,
    /// In-order result emission (shared logic with the streaming
    /// runtime's sink).
    emitter: InOrderEmitter,
    submitted: usize,
}

impl StreamPool {
    /// Spawns the worker threads; each builds its own [`Receiver`] for
    /// the shared code set.
    ///
    /// # Panics
    ///
    /// Panics on invalid receiver parameters (see [`Receiver::new`]).
    pub fn new(
        codes: Vec<PnCode>,
        phy: PhyProfile,
        config: ReceiverConfig,
        pool: StreamPoolConfig,
    ) -> StreamPool {
        // Validate eagerly on the caller's thread so bad parameters
        // panic here, not inside a worker.
        drop(Receiver::new(codes.clone(), phy, config));
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        });
        let (tx, results) = mpsc::channel();
        let width = pool.coalesce_width.max(1);
        let workers = (0..pool.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                let codes = codes.clone();
                std::thread::spawn(move || {
                    let mut receiver = Receiver::new(codes, phy, config);
                    worker_loop(&shared, &mut receiver, width, &tx);
                })
            })
            .collect();
        StreamPool {
            shared,
            results,
            workers,
            next_seq: Vec::new(),
            emitter: InOrderEmitter::new(),
            submitted: 0,
        }
    }

    /// Queues one capture on `stream`. Returns the capture's per-stream
    /// sequence number (its position within the stream's results).
    pub fn submit(&mut self, stream: usize, capture: Vec<Iq>) -> u64 {
        if self.next_seq.len() <= stream {
            self.next_seq.resize(stream + 1, 0);
        }
        self.emitter.track(stream);
        let seq = self.next_seq[stream];
        self.next_seq[stream] += 1;
        self.submitted += 1;
        {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            q.jobs.push_back(Job {
                stream,
                seq,
                capture,
            });
        }
        self.shared.ready.notify_one();
        seq
    }

    /// Captures submitted but not yet collected by [`StreamPool::ready`]
    /// or [`StreamPool::drain`].
    #[inline]
    pub fn pending(&self) -> usize {
        self.submitted - self.emitter.emitted()
    }

    /// Non-blocking: collects every finished capture whose per-stream
    /// predecessors have all been emitted, in (stream, seq) order.
    pub fn ready(&mut self) -> Vec<StreamResult> {
        while let Ok(result) = self.results.try_recv() {
            self.emitter.insert(result.stream, result.seq, result.report);
        }
        self.emitter.take_ready()
    }

    /// Blocks until every submitted capture has been processed, then
    /// returns all uncollected results in (stream, seq) order.
    pub fn drain(&mut self) -> Vec<StreamResult> {
        let mut out = self.ready();
        while self.emitter.emitted() + self.emitter.buffered() + out.len() < self.submitted {
            let result = self
                .results
                .recv()
                .expect("workers alive while jobs are pending");
            self.emitter.insert(result.stream, result.seq, result.report);
        }
        out.extend(self.emitter.take_ready());
        out
    }
}

impl Drop for StreamPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            q.shutdown = true;
        }
        self.shared.ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for StreamPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamPool")
            .field("workers", &self.workers.len())
            .field("submitted", &self.submitted)
            .field("collected", &self.emitter.emitted())
            .finish()
    }
}

/// Worker body: pull up to `width` queued captures, receive them in one
/// coalesced call, send each result back.
fn worker_loop(
    shared: &Shared,
    receiver: &mut Receiver,
    width: usize,
    tx: &mpsc::Sender<StreamResult>,
) {
    loop {
        let batch: Vec<Job> = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if !q.jobs.is_empty() {
                    break;
                }
                if q.shutdown {
                    return;
                }
                q = shared.ready.wait(q).expect("queue poisoned");
            }
            let take = width.min(q.jobs.len());
            q.jobs.drain(..take).collect()
        };
        let captures: Vec<&[Iq]> = batch.iter().map(|j| j.capture.as_slice()).collect();
        let reports = receiver.receive_coalesced(&captures);
        for (job, report) in batch.iter().zip(reports) {
            // A disconnected receiver means the pool was dropped with
            // jobs in flight; finishing quietly is the right exit.
            let _ = tx.send(StreamResult {
                stream: job.stream,
                seq: job.seq,
                report,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbma_codes::{CodeFamily, GoldFamily};
    use cbma_tag::frame::preamble_pattern;
    use cbma_tag::Tag;
    use cbma_types::geometry::Point;

    fn capture_for(codes: &[PnCode], phy: &PhyProfile, tag_idx: usize, lead: usize) -> Vec<Iq> {
        let mut tag = Tag::new(tag_idx as u32, Point::ORIGIN, codes[tag_idx].clone());
        let env = tag
            .transmit(format!("stream payload {tag_idx}").into_bytes(), phy)
            .unwrap();
        let mut buf = vec![Iq::ZERO; lead];
        buf.extend(env.iter().map(|&e| Iq::from_polar(0.01 * e, 0.4)));
        buf.extend(vec![Iq::ZERO; 64]);
        buf
    }

    #[test]
    fn pool_matches_sequential_receiver_outcomes() {
        let phy = PhyProfile::paper_default();
        let codes = GoldFamily::new(5).unwrap().codes(3).unwrap();
        let captures: Vec<Vec<Iq>> = (0..3)
            .flat_map(|t| [capture_for(&codes, &phy, t, 300 + 40 * t), vec![Iq::ZERO; 2000]])
            .collect();

        let mut sequential = Receiver::new(codes.clone(), phy, ReceiverConfig::default());
        let expected: Vec<RxReport> = captures.iter().map(|c| sequential.receive(c)).collect();

        let mut pool = StreamPool::new(
            codes,
            phy,
            ReceiverConfig::default(),
            StreamPoolConfig {
                workers: 2,
                coalesce_width: 3,
            },
        );
        // Two streams, interleaved submissions.
        for (i, capture) in captures.iter().enumerate() {
            pool.submit(i % 2, capture.clone());
        }
        let results = pool.drain();
        assert_eq!(results.len(), captures.len());
        // Per-stream in-order emission.
        for stream in 0..2 {
            let seqs: Vec<u64> = results
                .iter()
                .filter(|r| r.stream == stream)
                .map(|r| r.seq)
                .collect();
            assert_eq!(seqs, (0..seqs.len() as u64).collect::<Vec<_>>());
        }
        // Deterministic outcomes match the sequential receiver (exact
        // correlation floats can differ by FFT rounding between the
        // coalesced and single-window paths, so compare the decisions).
        for result in &results {
            let i = result.stream + 2 * result.seq as usize;
            let want = &expected[i];
            assert_eq!(result.report.frame_detected, want.frame_detected, "capture {i}");
            assert_eq!(result.report.ack, want.ack, "capture {i}");
            assert_eq!(
                result.report.detected_ids(),
                want.detected_ids(),
                "capture {i}"
            );
            for (got, want) in result.report.users.iter().zip(&want.users) {
                assert_eq!(got.detection.start, want.detection.start);
                assert_eq!(got.outcome.is_frame(), want.outcome.is_frame());
                assert!((got.detection.correlation - want.detection.correlation).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn ready_is_nonblocking_and_ordered() {
        let phy = PhyProfile::paper_default();
        let codes = GoldFamily::new(5).unwrap().codes(2).unwrap();
        let mut pool = StreamPool::new(
            codes,
            phy,
            ReceiverConfig::default(),
            StreamPoolConfig {
                workers: 1,
                coalesce_width: 2,
            },
        );
        assert_eq!(pool.pending(), 0);
        assert!(pool.ready().is_empty());
        for _ in 0..4 {
            pool.submit(7, vec![Iq::ZERO; 1500]);
        }
        assert_eq!(pool.pending(), 4);
        let results = pool.drain();
        assert_eq!(pool.pending(), 0);
        assert_eq!(
            results.iter().map(|r| (r.stream, r.seq)).collect::<Vec<_>>(),
            vec![(7, 0), (7, 1), (7, 2), (7, 3)]
        );
    }

    #[test]
    fn preamble_is_stable_reference() {
        // Guard: the preamble pattern the detector correlates is what the
        // tag transmits (a stream-pool capture exercises both sides).
        let phy = PhyProfile::paper_default();
        assert!(!preamble_pattern(phy.preamble_bits).is_empty());
    }

    #[test]
    fn dropping_a_pool_with_queued_work_does_not_hang() {
        let phy = PhyProfile::paper_default();
        let codes = GoldFamily::new(5).unwrap().codes(1).unwrap();
        let mut pool = StreamPool::new(
            codes,
            phy,
            ReceiverConfig::default(),
            StreamPoolConfig {
                workers: 1,
                coalesce_width: 1,
            },
        );
        for _ in 0..3 {
            pool.submit(0, vec![Iq::ZERO; 1200]);
        }
        drop(pool); // must join, not deadlock
    }
}
