//! User detection by preamble cross-correlation (§III-B).
//!
//! > "We utilize the orthogonality feature among PN sequences to perform
//! > user detection. Specifically, we use each of the PN sequences to
//! > cross-correlate with the preamble of the received frame. If the
//! > correlation value of a PN sequence is larger than a predetermined
//! > threshold, the user with this PN sequence is determined to be in the
//! > frame with high probability."
//!
//! For each candidate code the detector builds the *spread preamble*
//! reference — the known alternating preamble bits spread by that code and
//! mapped to ±1 at the receiver sample rate — and slides it over a search
//! window around the energy edge. Because concurrent tags are
//! asynchronous, each detected user gets its own alignment offset, and the
//! complex correlation at the peak doubles as the channel-gain estimate
//! the decoder needs for coherent bit decisions.
//!
//! # Computational structure
//!
//! The sliding correlation is the receiver's dominant cost. The detector
//! precomputes one [`SlidingCorrelator`] (cached reference spectrum +
//! overlap-save FFT plan) per code at construction, and
//! [`UserDetector::detect_candidates`] evaluates the full correlation
//! profile in O(N log B) per code instead of O(lags × ref_len). Per-lag
//! segment energies come from a single [`RunningEnergy`] prefix sum over
//! the window (O(1) per lag instead of O(ref_len)). Short windows — fewer
//! than [`FFT_LAG_CROSSOVER`] lags — stay on the direct time-domain path,
//! which is cheaper below the FFT's block overhead; both paths agree
//! within 1e-9 (see `tests/detect_equivalence.rs`).

use cbma_codes::PnCode;
use cbma_dsp::correlate::{correlate_iq_bipolar, dot};
use cbma_obs::trace::{SpanId, TraceId, Tracer};
use cbma_dsp::resample::upsample_repeat;
use cbma_dsp::simd;
use cbma_dsp::xcorr::{
    BatchScratch, MultiWindowCorrelator, RunningEnergy, SlidingCorrelator, WindowScratch,
};
use cbma_tag::frame::preamble_pattern;
use cbma_tag::phy::PhyProfile;
use cbma_types::Iq;

use crate::decoder::DecoderKind;

/// Minimum number of candidate lags for which the FFT engines beat the
/// direct time-domain path at paper-default reference lengths (≈2 k
/// samples). Below this the window is so short that the FFTs of the
/// correlator's block cost more than the handful of direct dot products
/// (direct ≈ lags·ref_len mults vs FFT ≈ 3·B·log₂B for a single compact
/// block — and the SIMD kernels speed *both* sides up, so the break-even
/// moves less than either speedup alone suggests). Measured by the
/// `user_detect` cases of the `bench_summary` runner in `cbma-bench`
/// (release build, AVX2 kernels, permutation-free raw FFTs): at the
/// paper-default search window — 603 lags, 10 codes — the batch engine
/// measures ≈11× faster than direct (≈0.40 ms vs ≈4.5 ms); sweeping the
/// window down, 10-code direct wins at 32 lags (≈0.24 ms vs ≈0.26 ms)
/// and the shared-FFT pass wins from 48 lags (≈0.32 ms vs ≈0.35 ms),
/// with roughly flat batch cost across the single-block regime — the
/// crossing sits near 40 lags.
pub const FFT_LAG_CROSSOVER: usize = 40;

/// Which sliding-correlation backend [`UserDetector::detect_candidates_with`]
/// uses to evaluate the per-lag correlation profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CorrelationPath {
    /// Batched shared-FFT pass when the references are uniform and the
    /// window offers at least [`FFT_LAG_CROSSOVER`] lags, direct
    /// otherwise.
    #[default]
    Auto,
    /// Always the O(lags × ref_len) time-domain path.
    Direct,
    /// Always the per-code overlap-save FFT engine.
    Fft,
    /// Always the shared-FFT [`BatchCorrelator`] (one forward FFT per
    /// block for all K codes). Falls back to the per-code FFT engine when
    /// the reference lengths are not uniform.
    Batch,
}

/// Reusable buffers for [`UserDetector::detect_candidates_in`].
///
/// Every intermediate the detector needs — the window prefix sums, the
/// magnitude series, the batched correlation matrix, per-code FFT blocks,
/// the raw/normalized profile and the peak lists — lives here and grows
/// to a high-water mark on first use, so steady-state detection performs
/// zero heap allocation.
#[derive(Debug, Default)]
pub struct DetectScratch {
    running: RunningEnergy,
    /// |s| magnitude series (envelope mode only).
    mags: Vec<f64>,
    /// The magnitude series as IQ, for the FFT engines (envelope mode).
    mags_iq: Vec<Iq>,
    /// K × lags correlation matrix from the batch engine.
    batch: BatchScratch,
    /// Per-code FFT block scratch.
    work: Vec<Iq>,
    /// Per-code complex correlation output.
    corr: Vec<Iq>,
    /// Per-lag decision statistic (raw, then normalized in place).
    profile: Vec<f64>,
    /// Above-threshold local maxima, then the NMS-selected subset.
    peaks: Vec<(usize, f64)>,
    selected: Vec<(usize, f64)>,
}

impl DetectScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> DetectScratch {
        DetectScratch::default()
    }

    /// Total heap capacity held by the scratch, in bytes.
    pub fn capacity_bytes(&self) -> usize {
        let iq = std::mem::size_of::<Iq>();
        let pair = std::mem::size_of::<(usize, f64)>();
        self.running.capacity_bytes()
            + self.batch.capacity_bytes()
            + self.mags.capacity() * std::mem::size_of::<f64>()
            + (self.mags_iq.capacity() + self.work.capacity() + self.corr.capacity()) * iq
            + self.profile.capacity() * std::mem::size_of::<f64>()
            + (self.peaks.capacity() + self.selected.capacity()) * pair
    }
}

/// Reusable buffers for [`UserDetector::detect_candidates_multi`].
///
/// The W × K × lags correlation rows live in the [`WindowScratch`] arena;
/// the per-window prefix sums are a grow-only pool so a steady stream of
/// same-width batches rebuilds in place. Like [`DetectScratch`], every
/// buffer grows to a high-water mark on first use and steady-state calls
/// perform zero heap allocation.
#[derive(Debug, Default)]
pub struct MultiDetectScratch {
    /// W-window × K-code correlation matrix arena.
    windows: WindowScratch,
    /// Per-window prefix-sum pool (entry `w` serves window `w`).
    runnings: Vec<RunningEnergy>,
    /// Hoisted per-lag inverse denominators 1/√(Σ|s|²) for the current
    /// window, shared across its K codes (one sqrt per lag instead of K).
    inv_seg: Vec<f64>,
    /// Per-lag normalized decision statistic.
    profile: Vec<f64>,
    /// Above-threshold local maxima, then the NMS-selected subset.
    peaks: Vec<(usize, f64)>,
    selected: Vec<(usize, f64)>,
    /// Per-window fallback scratch (envelope mode, mixed code families).
    single: DetectScratch,
}

impl MultiDetectScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> MultiDetectScratch {
        MultiDetectScratch::default()
    }

    /// Total heap capacity held by the scratch, in bytes.
    pub fn capacity_bytes(&self) -> usize {
        let pair = std::mem::size_of::<(usize, f64)>();
        self.windows.capacity_bytes()
            + self.runnings.iter().map(|r| r.capacity_bytes()).sum::<usize>()
            + self.runnings.capacity() * std::mem::size_of::<RunningEnergy>()
            + (self.inv_seg.capacity() + self.profile.capacity()) * std::mem::size_of::<f64>()
            + (self.peaks.capacity() + self.selected.capacity()) * pair
            + self.single.capacity_bytes()
    }

    /// Stable address of the correlation arena, for buffer-reuse
    /// regression tests.
    #[doc(hidden)]
    pub fn storage_ptr(&self) -> *const Iq {
        self.windows.storage_ptr()
    }
}

/// Correlation of the mean-removed envelope of `seg` against `reference`,
/// plus the mean-removed envelope's energy (for normalization).
///
/// Single fused pass: Σ(|s|−mean)·r = Σ|s|·r − mean·Σr and
/// Σ(|s|−mean)² = Σ|s|² − n·mean², so one traversal accumulating
/// (Σ|s|, Σ|s|², Σ|s|·r, Σr) replaces the old mean pass + correlation
/// pass.
fn envelope_correlation(seg: &[Iq], reference: &[f64]) -> (f64, f64) {
    let n = seg.len() as f64;
    let (mut sum_abs, mut sum_sq, mut dot_sr, mut ref_sum) = (0.0, 0.0, 0.0, 0.0);
    for (s, &r) in seg.iter().zip(reference) {
        let a = s.abs();
        sum_abs += a;
        sum_sq += a * a;
        dot_sr += a * r;
        ref_sum += r;
    }
    let mean = sum_abs / n;
    let corr = dot_sr - mean * ref_sum;
    let energy = (sum_sq - n * mean * mean).max(0.0);
    (corr, energy)
}

/// A user found in the received frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectedUser {
    /// Index of the PN code (== tag id) that matched.
    pub code_index: usize,
    /// Sample offset (into the scanned buffer) where the user's frame
    /// starts.
    pub start: usize,
    /// Normalized correlation at the peak, in [0, 1].
    pub correlation: f64,
    /// Complex channel-gain estimate ĝ from the preamble.
    pub channel_gain: Iq,
}

/// The user detector for a known code set.
#[derive(Debug)]
pub struct UserDetector {
    /// Bipolar spread-preamble reference per code, at sample rate.
    references: Vec<Vec<f64>>,
    /// Overlap-save FFT correlator per code, with the reference's
    /// conjugate spectrum cached at construction.
    correlators: Vec<SlidingCorrelator>,
    /// Shared-FFT K-code engine (wrapped by the W-window coalescing
    /// front-end): one forward FFT per block multiplied against every
    /// cached reference spectrum. `None` when the spread preambles do
    /// not share one length (mixed code families).
    multi: Option<MultiWindowCorrelator>,
    /// Σr² per code, precomputed for the normalization denominator.
    ref_energy: Vec<f64>,
    /// 1/√(Σr²) per code, precomputed so the multi-window path's hoisted
    /// normalization needs one multiply per (code, lag).
    ref_inv_sqrt: Vec<f64>,
    /// Σr per code, precomputed for the envelope mean correction.
    ref_sum: Vec<f64>,
    /// Per-code balance-corrected correlation scale (see
    /// [`UserDetector::detect_in`]).
    gain_scale: Vec<f64>,
    threshold: f64,
    samples_per_chip: usize,
    kind: DecoderKind,
}

impl UserDetector {
    /// Builds a detector for the full code set of a deployment.
    ///
    /// `threshold` is the normalized-correlation decision level in (0, 1);
    /// the evaluation uses 0.5.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside (0, 1) or `codes` is empty.
    pub fn new(codes: &[PnCode], phy: &PhyProfile, threshold: f64) -> UserDetector {
        UserDetector::with_kind(codes, phy, threshold, DecoderKind::Coherent)
    }

    /// Builds a detector with an explicit decision statistic.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside (0, 1) or `codes` is empty.
    pub fn with_kind(
        codes: &[PnCode],
        phy: &PhyProfile,
        threshold: f64,
        kind: DecoderKind,
    ) -> UserDetector {
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "threshold must be in (0, 1), got {threshold}"
        );
        assert!(!codes.is_empty(), "need at least one code");
        let spc = phy.samples_per_chip();
        let preamble = preamble_pattern(phy.preamble_bits);
        let mut references = Vec::with_capacity(codes.len());
        let mut correlators = Vec::with_capacity(codes.len());
        let mut ref_energy: Vec<f64> = Vec::with_capacity(codes.len());
        let mut ref_sum = Vec::with_capacity(codes.len());
        let mut gain_scale = Vec::with_capacity(codes.len());
        for code in codes {
            let mut chips: Vec<f64> = Vec::with_capacity(preamble.len() * code.len());
            for bit in preamble.iter() {
                let word = if bit == 1 {
                    code.bipolar_one()
                } else {
                    code.bipolar_zero()
                };
                chips.extend_from_slice(word);
            }
            let reference = upsample_repeat(&chips, spc);
            // The received OOK envelope is (b+1)/2, so
            // E[corr] = ĝ · (Σb² + Σb)/2 = ĝ · (n + balance)/2.
            let sum: f64 = reference.iter().sum();
            let n = reference.len() as f64;
            gain_scale.push((n + sum) / 2.0);
            correlators.push(SlidingCorrelator::new(&reference));
            ref_energy.push(reference.iter().map(|r| r * r).sum());
            ref_sum.push(sum);
            references.push(reference);
        }
        let uniform = references.iter().all(|r| r.len() == references[0].len());
        let multi = uniform.then(|| MultiWindowCorrelator::new(&references));
        let ref_inv_sqrt = ref_energy
            .iter()
            .map(|&e| {
                let s = e.sqrt();
                if s > 0.0 {
                    1.0 / s
                } else {
                    0.0
                }
            })
            .collect();
        UserDetector {
            references,
            correlators,
            multi,
            ref_energy,
            ref_inv_sqrt,
            ref_sum,
            gain_scale,
            threshold,
            samples_per_chip: spc,
            kind,
        }
    }

    /// The detection threshold.
    #[inline]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Length of the spread-preamble reference in samples.
    pub fn reference_len(&self, code_index: usize) -> usize {
        self.references[code_index].len()
    }

    /// Scans `window` (a slice of the received buffer starting at
    /// `window_origin`) for every known code. Returns, per code, up to
    /// `max_candidates` alignment candidates above the threshold, ordered
    /// by decreasing correlation. Codes with no candidate get an empty
    /// vector.
    ///
    /// Multiple candidates matter because an alternating preamble under
    /// complement signalling repeats its correlation magnitude at whole-
    /// code-word shifts, and interference can push a sidelobe above the
    /// true peak — the receiver disambiguates by *validating* candidates
    /// (preamble/CRC check) in correlation order, the way hardware
    /// receivers qualify sync candidates.
    pub fn detect_candidates(
        &self,
        window: &[Iq],
        window_origin: usize,
        max_candidates: usize,
    ) -> Vec<Vec<DetectedUser>> {
        self.detect_candidates_with(window, window_origin, max_candidates, CorrelationPath::Auto)
    }

    /// [`UserDetector::detect_candidates`] with an explicit correlation
    /// backend. `Auto` (the default path) runs the shared-FFT batch
    /// engine when the window offers at least [`FFT_LAG_CROSSOVER`]
    /// candidate lags, direct otherwise. All backends produce identical
    /// detections (offsets and gains exactly, correlations within FFT
    /// rounding ≈1e-12); `Direct`, `Fft` and `Batch` exist for
    /// equivalence tests and benchmarks.
    pub fn detect_candidates_with(
        &self,
        window: &[Iq],
        window_origin: usize,
        max_candidates: usize,
        path: CorrelationPath,
    ) -> Vec<Vec<DetectedUser>> {
        let mut scratch = DetectScratch::new();
        let mut out = Vec::new();
        self.detect_candidates_in(window, window_origin, max_candidates, path, &mut scratch, &mut out);
        out
    }

    /// Allocation-free core of [`UserDetector::detect_candidates_with`]:
    /// all intermediates live in `scratch`, and `out` is reused per code
    /// (inner vectors are cleared, not dropped). Once both have reached
    /// their high-water sizes a call performs zero heap allocation.
    pub fn detect_candidates_in(
        &self,
        window: &[Iq],
        window_origin: usize,
        max_candidates: usize,
        path: CorrelationPath,
        scratch: &mut DetectScratch,
        out: &mut Vec<Vec<DetectedUser>>,
    ) {
        self.detect_candidates_impl(window, window_origin, max_candidates, path, scratch, out, None, None);
    }

    /// Block-fed variant of [`UserDetector::detect_candidates_in`] on the
    /// `Auto` path: when the shared-FFT batch engine is selected, the
    /// window is fed to it `block_size` samples at a time through
    /// [`cbma_dsp::BatchStream`] — the streaming runtime's granularity —
    /// instead of one contiguous pass. Candidates are **bit-identical**
    /// to the one-shot entry for every `block_size`: the streamed
    /// overlap-save walk shares its block loader (and therefore its
    /// ragged-tail zero-padding) with the one-shot pass, and windows too
    /// small for the batch engine take the identical direct path.
    pub fn detect_candidates_streamed(
        &self,
        window: &[Iq],
        window_origin: usize,
        max_candidates: usize,
        block_size: usize,
        scratch: &mut DetectScratch,
        out: &mut Vec<Vec<DetectedUser>>,
    ) {
        self.detect_candidates_impl(
            window,
            window_origin,
            max_candidates,
            CorrelationPath::Auto,
            scratch,
            out,
            None,
            Some(block_size.max(1)),
        );
    }

    /// [`UserDetector::detect_candidates_in`] with span instrumentation:
    /// the shared-FFT pass records a `batch_correlate` child span (with
    /// `fft_block` grandchildren from the engine) and every per-code
    /// profile scan records a `correlate` span (arg = code index) under
    /// `parent`. The untraced entry point shares this body with
    /// `trace = None`, which costs one branch per code.
    #[allow(clippy::too_many_arguments)]
    pub fn detect_candidates_traced(
        &self,
        window: &[Iq],
        window_origin: usize,
        max_candidates: usize,
        path: CorrelationPath,
        scratch: &mut DetectScratch,
        out: &mut Vec<Vec<DetectedUser>>,
        tracer: &Tracer,
        trace: TraceId,
        parent: SpanId,
    ) {
        self.detect_candidates_impl(
            window,
            window_origin,
            max_candidates,
            path,
            scratch,
            out,
            Some((tracer, trace, parent)),
            None,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn detect_candidates_impl(
        &self,
        window: &[Iq],
        window_origin: usize,
        max_candidates: usize,
        path: CorrelationPath,
        scratch: &mut DetectScratch,
        out: &mut Vec<Vec<DetectedUser>>,
        trace: Option<(&Tracer, TraceId, SpanId)>,
        stream_block: Option<usize>,
    ) {
        out.truncate(self.references.len());
        for v in out.iter_mut() {
            v.clear();
        }
        out.resize_with(self.references.len(), Vec::new);
        let DetectScratch {
            running,
            mags,
            mags_iq,
            batch,
            work,
            corr,
            profile,
            peaks,
            selected,
        } = scratch;
        // One prefix-sum pass over the window serves every code's per-lag
        // normalization: Σ|s|² for the coherent denominator, Σ|s| (mean)
        // and the mean-removed energy for the envelope statistic.
        running.rebuild(window);
        // Envelope mode correlates the |s| magnitude series; materialize
        // it once (plus an IQ copy for the FFT engines) and share it
        // across codes.
        let envelope_mode = matches!(self.kind, DecoderKind::Envelope);
        if envelope_mode {
            mags.clear();
            mags.resize(window.len(), 0.0);
            simd::magnitudes_into(window, mags);
            mags_iq.clear();
            mags_iq.extend(mags.iter().map(|&v| Iq::new(v, 0.0)));
        }
        // The batch engine runs once for every code; decide up front.
        let use_batch = match (path, &self.multi) {
            (CorrelationPath::Direct | CorrelationPath::Fft, _) => false,
            (_, None) => false,
            (CorrelationPath::Batch, Some(m)) => window.len() >= m.reference_len(),
            (CorrelationPath::Auto, Some(m)) => {
                window.len() >= m.reference_len()
                    && window.len() - m.reference_len() + 1 >= FFT_LAG_CROSSOVER
            }
        };
        if use_batch {
            let engine = self.multi.as_ref().expect("checked above").batch();
            let input: &[Iq] = if envelope_mode { mags_iq } else { window };
            match (trace, stream_block) {
                (Some((tracer, trace, parent)), _) => {
                    let span = tracer.span(trace, Some(parent), "batch_correlate");
                    engine.correlate_iq_into_traced(input, batch, tracer, trace, span.id());
                }
                (None, Some(block_size)) => {
                    let mut stream = engine.begin_stream(input.len(), batch);
                    for chunk in input.chunks(block_size) {
                        stream.feed(engine, chunk, batch);
                    }
                    stream.finish(engine, batch);
                }
                (None, None) => engine.correlate_iq_into(input, batch),
            }
        }
        for (idx, reference) in self.references.iter().enumerate() {
            if reference.len() > window.len() {
                continue;
            }
            let _code_span = trace.map(|(tracer, trace, parent)| {
                let mut span = tracer.span(trace, Some(parent), "correlate");
                span.set_arg(idx as u64);
                span
            });
            let len = reference.len();
            let lags = window.len() - len + 1;
            let use_fft = match path {
                CorrelationPath::Auto => !use_batch && lags >= FFT_LAG_CROSSOVER,
                CorrelationPath::Direct => false,
                CorrelationPath::Fft => true,
                // Non-uniform references: per-code FFT stands in.
                CorrelationPath::Batch => !use_batch,
            };
            let ref_energy = self.ref_energy[idx];
            let ref_sum = self.ref_sum[idx];
            // Raw (unnormalized) decision statistic at every lag. Coherent
            // mode takes |Σ s·r| (noncoherent magnitude of the complex
            // correlation); envelope mode takes |Σ(|s|−mean)·r| =
            // |Σ|s|·r − mean·Σr|, with the FFT supplying the Σ|s|·r term.
            profile.clear();
            if use_batch {
                let row = batch.code(idx);
                if envelope_mode {
                    profile.extend(row.iter().enumerate().map(|(off, c)| {
                        (c.re - running.mean_abs(off, len) * ref_sum).abs()
                    }));
                } else {
                    profile.resize(lags, 0.0);
                    simd::magnitudes_into(row, profile);
                }
            } else {
                match (self.kind, use_fft) {
                    (DecoderKind::Coherent, false) => profile.extend((0..lags).map(|off| {
                        correlate_iq_bipolar(&window[off..off + len], reference).abs()
                    })),
                    (DecoderKind::Coherent, true) => {
                        self.correlators[idx].correlate_iq_into(window, work, corr);
                        profile.resize(lags, 0.0);
                        simd::magnitudes_into(corr, profile);
                    }
                    (DecoderKind::Envelope, false) => {
                        profile.extend((0..lags).map(|off| {
                            let mean = running.mean_abs(off, len);
                            (dot(&mags[off..off + len], reference) - mean * ref_sum).abs()
                        }));
                    }
                    (DecoderKind::Envelope, true) => {
                        self.correlators[idx].correlate_iq_into(mags_iq, work, corr);
                        profile.extend(corr.iter().enumerate().map(|(off, c)| {
                            (c.re - running.mean_abs(off, len) * ref_sum).abs()
                        }));
                    }
                }
            }
            debug_assert_eq!(profile.len(), lags);
            // Sliding normalized correlation, in place: normalize by the
            // reference energy and the per-lag windowed signal energy
            // (O(1) prefix lookups).
            for (off, c) in profile.iter_mut().enumerate() {
                let seg_energy = match self.kind {
                    DecoderKind::Coherent => running.power(off, len),
                    DecoderKind::Envelope => running.centered_energy(off, len),
                };
                let denom = (seg_energy * ref_energy).sqrt();
                *c = if denom > 0.0 { *c / denom } else { 0.0 };
            }
            self.select_peaks(profile, max_candidates, peaks, selected);
            out[idx].extend(selected.iter().map(|&(off, val)| {
                let seg = &window[off..off + reference.len()];
                let gain = self.gain_estimate(seg, reference, idx);
                DetectedUser {
                    code_index: idx,
                    start: window_origin + off,
                    correlation: val,
                    channel_gain: gain,
                }
            }));
        }
    }

    /// Scans W capture windows in one coalesced pass. `out[w][k]` holds
    /// up to `max_candidates` candidates for code `k` in window `w` —
    /// the same detections (offsets and gains exactly, correlations
    /// within FFT rounding) as W separate
    /// [`UserDetector::detect_candidates_in`] calls, but the correlation
    /// work runs as a single [`MultiWindowCorrelator`] matrix pass:
    /// every window is forward-transformed once and the K cached
    /// reference spectra (and the plan's twiddle tables, hot in cache)
    /// are reused across all W windows.
    ///
    /// On top of the shared transforms the coalesced path exploits what
    /// the matrix layout makes cheap:
    ///
    /// * the per-lag normalization denominator `√(seg·ref)` is hoisted —
    ///   one inverse sqrt per lag shared by all K codes, then a single
    ///   multiply per (code, lag), instead of K sqrt+div per lag;
    /// * the channel-gain estimate is read from the complex correlation
    ///   row at the detected offset (the row *is* `Σ s·r`), replacing
    ///   the `O(ref_len)` re-correlation dot product per candidate.
    ///
    /// Envelope-statistic detectors and mixed-length code sets fall back
    /// to per-window [`CorrelationPath::Auto`] scans (same results, no
    /// coalescing); the coherent decision statistic is the paper
    /// default.
    ///
    /// # Panics
    ///
    /// Panics if `windows` and `origins` differ in length.
    pub fn detect_candidates_multi(
        &self,
        windows: &[&[Iq]],
        origins: &[usize],
        max_candidates: usize,
        scratch: &mut MultiDetectScratch,
        out: &mut Vec<Vec<Vec<DetectedUser>>>,
    ) {
        self.detect_candidates_multi_impl(windows, origins, max_candidates, scratch, out, None);
    }

    /// [`UserDetector::detect_candidates_multi`] with span
    /// instrumentation: the coalesced correlation pass records one
    /// `multi_window_correlate` span (arg = `(W << 32) | K`) under
    /// `parent`.
    #[allow(clippy::too_many_arguments)]
    pub fn detect_candidates_multi_traced(
        &self,
        windows: &[&[Iq]],
        origins: &[usize],
        max_candidates: usize,
        scratch: &mut MultiDetectScratch,
        out: &mut Vec<Vec<Vec<DetectedUser>>>,
        tracer: &Tracer,
        trace: TraceId,
        parent: SpanId,
    ) {
        self.detect_candidates_multi_impl(
            windows,
            origins,
            max_candidates,
            scratch,
            out,
            Some((tracer, trace, parent)),
        );
    }

    fn detect_candidates_multi_impl(
        &self,
        windows: &[&[Iq]],
        origins: &[usize],
        max_candidates: usize,
        scratch: &mut MultiDetectScratch,
        out: &mut Vec<Vec<Vec<DetectedUser>>>,
        trace: Option<(&Tracer, TraceId, SpanId)>,
    ) {
        assert_eq!(
            windows.len(),
            origins.len(),
            "one origin per capture window"
        );
        out.truncate(windows.len());
        out.resize_with(windows.len(), Vec::new);
        for per_window in out.iter_mut() {
            per_window.truncate(self.references.len());
            for v in per_window.iter_mut() {
                v.clear();
            }
            per_window.resize_with(self.references.len(), Vec::new);
        }
        let coalesce = matches!(self.kind, DecoderKind::Coherent) && self.multi.is_some();
        if !coalesce {
            // Envelope statistics need per-window |s| series and mixed
            // code families have no shared-spectrum engine; both take
            // the single-window Auto path per window (identical
            // results, no transform sharing).
            for (w, (&window, &origin)) in windows.iter().zip(origins).enumerate() {
                self.detect_candidates_impl(
                    window,
                    origin,
                    max_candidates,
                    CorrelationPath::Auto,
                    &mut scratch.single,
                    &mut out[w],
                    trace,
                    None,
                );
            }
            return;
        }
        let multi = self.multi.as_ref().expect("checked above");
        match trace {
            Some((tracer, trace_id, parent)) => {
                multi.correlate_iq_multi_traced(
                    windows,
                    &mut scratch.windows,
                    tracer,
                    trace_id,
                    parent,
                );
            }
            None => multi.correlate_iq_multi(windows, &mut scratch.windows),
        }
        let ref_len = multi.reference_len();
        if scratch.runnings.len() < windows.len() {
            scratch
                .runnings
                .resize_with(windows.len(), RunningEnergy::default);
        }
        for (w, (&window, &origin)) in windows.iter().zip(origins).enumerate() {
            if window.len() < ref_len {
                continue;
            }
            let lags = window.len() - ref_len + 1;
            scratch.runnings[w].rebuild(window);
            let running = &scratch.runnings[w];
            // Hoisted normalization: one inverse sqrt per lag, shared by
            // every code row of this window.
            scratch.inv_seg.clear();
            scratch.inv_seg.extend((0..lags).map(|off| {
                let d = running.power(off, ref_len).sqrt();
                if d > 0.0 {
                    1.0 / d
                } else {
                    0.0
                }
            }));
            for (idx, per_code) in out[w].iter_mut().enumerate() {
                let row = scratch.windows.row(w, idx);
                scratch.profile.clear();
                scratch.profile.resize(lags, 0.0);
                simd::magnitudes_into(row, &mut scratch.profile);
                let ref_scale = self.ref_inv_sqrt[idx];
                for (c, &inv) in scratch.profile.iter_mut().zip(scratch.inv_seg.iter()) {
                    *c *= inv * ref_scale;
                }
                self.select_peaks(
                    &scratch.profile,
                    max_candidates,
                    &mut scratch.peaks,
                    &mut scratch.selected,
                );
                let gain_scale = self.gain_scale[idx];
                per_code.extend(scratch.selected.iter().map(|&(off, val)| DetectedUser {
                    code_index: idx,
                    start: origin + off,
                    correlation: val,
                    // The complex row value at the peak *is* Σ s·r — the
                    // gain estimate without re-correlating the segment.
                    channel_gain: row[off] / gain_scale,
                }));
            }
        }
    }

    /// Probes one exact alignment for one code: computes the normalized
    /// preamble correlation and channel-gain estimate at `start` (an
    /// absolute offset into `samples`). Returns `None` when the buffer is
    /// too short.
    ///
    /// Used by the receiver's fine-alignment fallback: under concurrent
    /// orthogonal tags the correlation profile *dips* at the true
    /// alignment (MAI is nulled there and leaks everywhere else), so the
    /// true start may not be a local maximum — but it can be probed
    /// directly from a timing hypothesis.
    pub fn probe(&self, samples: &[Iq], start: usize, code_index: usize) -> Option<DetectedUser> {
        let reference = &self.references[code_index];
        if start + reference.len() > samples.len() {
            return None;
        }
        let seg = &samples[start..start + reference.len()];
        let ref_energy = self.ref_energy[code_index];
        let (c, seg_energy) = match self.kind {
            DecoderKind::Coherent => (
                correlate_iq_bipolar(seg, reference).abs(),
                seg.iter().map(|s| s.power()).sum(),
            ),
            DecoderKind::Envelope => {
                let (corr, energy) = envelope_correlation(seg, reference);
                (corr.abs(), energy)
            }
        };
        let denom = (seg_energy * ref_energy).sqrt();
        Some(DetectedUser {
            code_index,
            start,
            correlation: if denom > 0.0 { c / denom } else { 0.0 },
            channel_gain: self.gain_estimate(seg, reference, code_index),
        })
    }

    /// Channel-gain estimate at an exact alignment (used by the coherent
    /// decoder; informational in envelope mode).
    fn gain_estimate(&self, seg: &[Iq], reference: &[f64], code_index: usize) -> Iq {
        correlate_iq_bipolar(seg, reference) / self.gain_scale[code_index]
    }

    /// Local maxima of `profile` above the threshold, non-maximum-
    /// suppressed over a ±one-chip neighbourhood (candidates one chip
    /// apart are genuinely different alignments the decoder must test),
    /// strongest first, at most `max_candidates`. Results land in
    /// `selected`; `peaks` is working storage. Shared by the single- and
    /// multi-window paths so their candidate sets match by construction.
    fn select_peaks(
        &self,
        profile: &[f64],
        max_candidates: usize,
        peaks: &mut Vec<(usize, f64)>,
        selected: &mut Vec<(usize, f64)>,
    ) {
        let nms_radius = self.samples_per_chip.max(2);
        peaks.clear();
        peaks.extend(
            (0..profile.len())
                .filter(|&i| {
                    let v = profile[i];
                    v >= self.threshold
                        && (i == 0 || profile[i - 1] <= v)
                        && (i + 1 == profile.len() || profile[i + 1] < v)
                })
                .map(|i| (i, profile[i])),
        );
        peaks.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        selected.clear();
        for &(off, val) in peaks.iter() {
            if selected.iter().all(|&(o, _)| off.abs_diff(o) >= nms_radius) {
                selected.push((off, val));
                if selected.len() >= max_candidates {
                    break;
                }
            }
        }
    }

    /// Convenience wrapper returning only each code's strongest candidate.
    pub fn detect_in(&self, window: &[Iq], window_origin: usize) -> Vec<DetectedUser> {
        self.detect_candidates(window, window_origin, 1)
            .into_iter()
            .filter_map(|c| c.into_iter().next())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbma_codes::{CodeFamily, GoldFamily};
    use cbma_tag::encoder::spread;
    use cbma_tag::modulator::ook_envelope;

    fn phy() -> PhyProfile {
        PhyProfile::paper_default()
    }

    /// Builds the received IQ for a preamble-led chip stream with a given
    /// complex gain, preceded by `lead` zero samples.
    fn rx_signal(code: &PnCode, gain: Iq, lead: usize, extra_bits: &str) -> Vec<Iq> {
        let p = phy();
        let mut bits = preamble_pattern(p.preamble_bits);
        for b in cbma_types::Bits::from_str(extra_bits).unwrap().iter() {
            bits.push(b);
        }
        let env = ook_envelope(&spread(&bits, code), p.samples_per_chip());
        let mut buf = vec![Iq::ZERO; lead];
        buf.extend(env.iter().map(|&e| gain.scale(e)));
        buf
    }

    #[test]
    fn detects_single_user_at_correct_offset() {
        let family = GoldFamily::new(5).unwrap();
        let codes = family.codes(4).unwrap();
        let det = UserDetector::new(&codes, &phy(), 0.5);
        let buf = rx_signal(&codes[2], Iq::new(1.0, 0.0), 40, "1100");
        let users = det.detect_in(&buf, 0);
        assert_eq!(users.len(), 1);
        assert_eq!(users[0].code_index, 2);
        assert_eq!(users[0].start, 40);
        // A clean OOK signal tops out near √2/2 ≈ 0.707 in this
        // normalization (the envelope's DC half carries no correlation).
        assert!(users[0].correlation > 0.65, "corr {}", users[0].correlation);
    }

    #[test]
    fn channel_gain_estimate_recovers_phase_and_amplitude() {
        let family = GoldFamily::new(5).unwrap();
        let codes = family.codes(2).unwrap();
        let det = UserDetector::new(&codes, &phy(), 0.5);
        let g = Iq::from_polar(0.02, 1.1);
        let buf = rx_signal(&codes[0], g, 16, "10");
        let users = det.detect_in(&buf, 0);
        assert_eq!(users.len(), 1);
        let est = users[0].channel_gain;
        assert!((est.abs() - 0.02).abs() / 0.02 < 0.1, "gain {est}");
        assert!((est.arg() - 1.1).abs() < 0.1, "phase {}", est.arg());
    }

    #[test]
    fn detects_two_asynchronous_users() {
        let family = GoldFamily::new(5).unwrap();
        let codes = family.codes(3).unwrap();
        let det = UserDetector::with_kind(&codes, &phy(), 0.35, DecoderKind::Coherent);
        let a = rx_signal(&codes[0], Iq::new(1.0, 0.0), 20, "01");
        let b = rx_signal(&codes[1], Iq::new(0.0, 1.0), 60, "11");
        let n = a.len().max(b.len());
        let mut buf = vec![Iq::ZERO; n];
        for (i, s) in a.into_iter().enumerate() {
            buf[i] += s;
        }
        for (i, s) in b.into_iter().enumerate() {
            buf[i] += s;
        }
        let candidates = det.detect_candidates(&buf, 0, 4);
        assert!(!candidates[0].is_empty(), "user 0 missed");
        assert!(!candidates[1].is_empty(), "user 1 missed");
        assert!(
            candidates[2].is_empty(),
            "phantom user 2: {:?}",
            candidates[2]
        );
        // The true alignments must be among the qualified candidates (the
        // receiver disambiguates by decode validation).
        assert!(
            candidates[0].iter().any(|u| u.start == 20),
            "user 0 candidates {:?}",
            candidates[0]
        );
        assert!(
            candidates[1].iter().any(|u| u.start == 60),
            "user 1 candidates {:?}",
            candidates[1]
        );
    }

    #[test]
    fn absent_users_stay_undetected_in_noise() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let family = GoldFamily::new(5).unwrap();
        let codes = family.codes(5).unwrap();
        let det = UserDetector::new(&codes, &phy(), 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let buf: Vec<Iq> = (0..6000)
            .map(|_| Iq::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect();
        assert!(det.detect_in(&buf, 0).is_empty());
    }

    #[test]
    fn window_origin_offsets_reported_start() {
        let family = GoldFamily::new(5).unwrap();
        let codes = family.codes(1).unwrap();
        let det = UserDetector::new(&codes, &phy(), 0.5);
        let buf = rx_signal(&codes[0], Iq::ONE, 8, "1");
        let users = det.detect_in(&buf, 1000);
        assert_eq!(users[0].start, 1008);
    }

    #[test]
    fn short_window_is_skipped() {
        let family = GoldFamily::new(5).unwrap();
        let codes = family.codes(1).unwrap();
        let det = UserDetector::new(&codes, &phy(), 0.5);
        assert!(det.detect_in(&[Iq::ONE; 10], 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_panics() {
        let family = GoldFamily::new(5).unwrap();
        UserDetector::new(&family.codes(1).unwrap(), &phy(), 1.5);
    }
}
