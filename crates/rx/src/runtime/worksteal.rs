//! The work-stealing scheduler: every stream's stage activations as
//! stealable tasks over a fixed worker pool.
//!
//! [`super::Scheduler::ThreadPerStage`] spends one OS thread per stage
//! per flowgraph — at the 256+ concurrent-stream scale the paper's
//! deployment story implies, that is thousands of threads. Here the
//! *task*, not the thread, is the unit of scheduling:
//!
//! * Each stream gets its own 4-stage chain of bounded SPSC rings
//!   (source→sync→detect→decode→sic→sink), exactly the thread-per-stage
//!   topology, so per-stream FIFO order and bounded in-flight memory
//!   carry over unchanged.
//! * Each `(stream, stage)` pair is one task. A task is *ready* when its
//!   input ring has data and its output ring has space; readiness is
//!   edge-triggered by the ring waker hooks (empty→nonempty wakes the
//!   consumer stage's task, full→nonfull the producer's), so a stalled
//!   SIC stage backpressures by simply not being ready — it never holds
//!   a worker hostage.
//! * Workers keep ready tasks in a local deque: LIFO pop for cache
//!   locality (the task just woken by your own push is the hottest),
//!   FIFO steal from victims chosen by rotating scan for fairness, one
//!   shared injector queue for wakes arriving from outside the pool
//!   (the driver thread). Idle workers park on a permit-counting lot —
//!   no spin-burn when every ring is empty.
//! * A task's state machine (idle → queued → running → rerun) guarantees
//!   a single runner per task at any moment, so a stage's carry state
//!   needs only an uncontended mutex and the SPSC ring discipline is
//!   preserved even though every worker can touch every ring.
//!
//! **Decision identity.** Workers run stage bodies against worker-local
//! [`Receiver`]s. The stage seams are per-capture stateless (their
//! scratch arenas are cleared per use — the same property
//! `crates/rx/src/stream_pool.rs` relies on), per-stream order is
//! enforced by the chain FIFOs, and the global decisions (frame-sync
//! edge, alias resolution) happen inside a single stage activation — so
//! which worker runs a task, in which interleaving, at which pool size,
//! is invisible in the output. `crates/rx/tests/streaming_equivalence.rs`
//! pins whole-report equality against [`super::Scheduler::Inline`]
//! across worker counts; the campaign-level byte-identity lives in the
//! root `tests/streaming.rs`.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use cbma_codes::PnCode;
use cbma_obs::trace::Tracer;
use cbma_obs::MetricsRegistry;
use cbma_tag::phy::PhyProfile;
use cbma_types::Iq;

use crate::receiver::{Receiver, ReceiverConfig};
use crate::stream_pool::{InOrderEmitter, StreamResult};

use super::ring::{ring, Consumer, DepthProbe, Producer, RingError, TryPop, TryPush};
use super::source::{CaptureSource, SampleSource, SourceBlock};
use super::{
    decode_capture, detect_capture, panic_message, sic_capture, sync_block, DecodedCapture,
    DetectedCapture, FaultPlan, FlowgraphError, InflightSync, RunOutput, RunStats, RuntimeConfig,
    RuntimeMetrics, RxFlowgraph, StageKind, StageObs, SyncedCapture,
};

/// Stages per stream chain; task ids are `stream * STAGES + stage`.
const STAGES: usize = 4;

const STAGE_KINDS: [StageKind; STAGES] = [
    StageKind::Sync,
    StageKind::Detect,
    StageKind::Decode,
    StageKind::Sic,
];

// Task states. A task is QUEUED at most once (in exactly one queue) and
// RUNNING on at most one worker; a wake landing mid-run becomes RERUN so
// the runner requeues it on exit instead of racing a second runner.
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const RERUN: u8 = 3;

/// Distinguishes pools so a nested run's wakes never land in an outer
/// pool's local deque. Token 0 is "no pool".
static POOL_TOKEN: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// `(pool token, worker index)` of the pool this thread belongs to.
    static WORKER_CTX: Cell<(usize, usize)> = const { Cell::new((0, usize::MAX)) };
}

/// The idle lot: a permit-counting park/unpark protocol. Granting a
/// permit even when nobody sleeps (capped at the pool size) closes the
/// scan-then-park race: a worker that found every queue empty consumes a
/// pending permit instead of sleeping through the wake that raced it.
struct Lot {
    permits: usize,
    sleepers: usize,
    shutdown: bool,
}

struct PoolState {
    /// One state per `(stream, stage)` task.
    tasks: Vec<AtomicU8>,
    /// Per-worker deques plus the injector at index `workers`.
    queues: Vec<Mutex<VecDeque<u32>>>,
    workers: usize,
    token: usize,
    lot: Mutex<Lot>,
    lot_cv: Condvar,
    shutdown: AtomicBool,
    /// First failure wins; the message names the stage.
    failure: Mutex<Option<String>>,
    /// Driver wake generation: bumped by result/space wakers so the
    /// driver thread can sleep between pump/collect passes.
    driver_gen: Mutex<u64>,
    driver_cv: Condvar,
    steals: AtomicU64,
    local_hits: AtomicU64,
    parks: AtomicU64,
    park_ns: AtomicU64,
    busy_ns: AtomicU64,
}

impl PoolState {
    fn new(tasks: usize, workers: usize) -> PoolState {
        PoolState {
            tasks: (0..tasks).map(|_| AtomicU8::new(IDLE)).collect(),
            queues: (0..=workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            workers,
            token: POOL_TOKEN.fetch_add(1, Ordering::Relaxed),
            lot: Mutex::new(Lot {
                permits: 0,
                sleepers: 0,
                shutdown: false,
            }),
            lot_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            failure: Mutex::new(None),
            driver_gen: Mutex::new(0),
            driver_cv: Condvar::new(),
            steals: AtomicU64::new(0),
            local_hits: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            park_ns: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
        }
    }

    /// Marks `task` ready. Idle tasks are queued (locally when called
    /// from one of this pool's workers, else via the injector) and a
    /// sleeper is unparked; a running task is flagged for rerun.
    fn wake(&self, task: u32) {
        let state = &self.tasks[task as usize];
        loop {
            match state.load(Ordering::SeqCst) {
                IDLE => {
                    if state
                        .compare_exchange(IDLE, QUEUED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        self.enqueue(task);
                        self.unpark_one();
                        return;
                    }
                }
                RUNNING => {
                    if state
                        .compare_exchange(RUNNING, RERUN, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued or flagged: the pending run will see
                // whatever this wake signalled.
                _ => return,
            }
        }
    }

    fn enqueue(&self, task: u32) {
        let idx = WORKER_CTX.with(|ctx| {
            let (token, worker) = ctx.get();
            if token == self.token {
                worker
            } else {
                self.workers
            }
        });
        self.queues[idx].lock().expect("task queue").push_back(task);
    }

    fn unpark_one(&self) {
        let mut lot = self.lot.lock().expect("idle lot");
        if lot.permits < self.workers {
            lot.permits += 1;
        }
        drop(lot);
        self.lot_cv.notify_one();
    }

    /// Parks until a permit arrives (or shutdown). Returns immediately
    /// when a permit is already pending — the caller rescans the queues.
    fn park(&self) {
        let mut lot = self.lot.lock().expect("idle lot");
        if lot.shutdown {
            return;
        }
        if lot.permits > 0 {
            lot.permits -= 1;
            return;
        }
        let start = Instant::now();
        lot.sleepers += 1;
        while lot.permits == 0 && !lot.shutdown {
            lot = self.lot_cv.wait(lot).expect("idle lot");
        }
        lot.sleepers -= 1;
        if lot.permits > 0 {
            lot.permits -= 1;
        }
        drop(lot);
        self.parks.fetch_add(1, Ordering::Relaxed);
        self.park_ns.fetch_add(
            start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }

    /// Records the first failure and tears the pool down: every idle
    /// worker is unparked so the scope can join promptly.
    fn fail(&self, message: String) {
        let mut failure = self.failure.lock().expect("failure slot");
        if failure.is_none() {
            *failure = Some(message);
        }
        drop(failure);
        self.shutdown_all();
    }

    fn shutdown_all(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let mut lot = self.lot.lock().expect("idle lot");
        lot.shutdown = true;
        drop(lot);
        self.lot_cv.notify_all();
        self.signal_driver();
    }

    fn signal_driver(&self) {
        let mut generation = self.driver_gen.lock().expect("driver gen");
        *generation += 1;
        drop(generation);
        self.driver_cv.notify_all();
    }

    fn driver_generation(&self) -> u64 {
        *self.driver_gen.lock().expect("driver gen")
    }

    /// Sleeps until the generation moves past `seen` (any result, space
    /// or shutdown signal since the driver last looked).
    fn driver_wait(&self, seen: u64) {
        let mut generation = self.driver_gen.lock().expect("driver gen");
        while *generation == seen {
            generation = self.driver_cv.wait(generation).expect("driver gen");
        }
    }

    fn take_failure(&self) -> Option<String> {
        self.failure.lock().expect("failure slot").take()
    }
}

/// One stream's stage chain: the five rings plus the sync stage's
/// carried accumulator. Shared by reference with every worker; the
/// single-runner task invariant keeps each ring effectively SPSC.
struct StreamChain {
    blk_tx: Producer<SourceBlock>,
    blk_rx: Consumer<SourceBlock>,
    syn_tx: Producer<SyncedCapture>,
    syn_rx: Consumer<SyncedCapture>,
    det_tx: Producer<DetectedCapture>,
    det_rx: Consumer<DetectedCapture>,
    dec_tx: Producer<DecodedCapture>,
    dec_rx: Consumer<DecodedCapture>,
    res_tx: Producer<StreamResult>,
    res_rx: Consumer<StreamResult>,
    sync_carry: Mutex<Option<InflightSync>>,
}

/// Per-position depth probes for one chain, in pipeline order.
struct ChainProbes {
    blk: DepthProbe<SourceBlock>,
    syn: DepthProbe<SyncedCapture>,
    det: DepthProbe<DetectedCapture>,
    dec: DepthProbe<DecodedCapture>,
    res: DepthProbe<StreamResult>,
}

impl StreamChain {
    fn new(capacity: usize, stream: usize, pool: &Arc<PoolState>) -> (StreamChain, ChainProbes) {
        let (blk_tx, blk_rx) = ring::<SourceBlock>(capacity);
        let (syn_tx, syn_rx) = ring::<SyncedCapture>(capacity);
        let (det_tx, det_rx) = ring::<DetectedCapture>(capacity);
        let (dec_tx, dec_rx) = ring::<DecodedCapture>(capacity);
        let (res_tx, res_rx) = ring::<StreamResult>(capacity);
        let probes = ChainProbes {
            blk: blk_rx.probe(),
            syn: syn_rx.probe(),
            det: det_rx.probe(),
            dec: dec_rx.probe(),
            res: res_rx.probe(),
        };
        let task = |stage: usize| (stream * STAGES + stage) as u32;
        let waker = |stage: usize| {
            let pool = Arc::clone(pool);
            let id = task(stage);
            Arc::new(move || pool.wake(id)) as super::ring::RingWaker
        };
        // Data on a stage's input and space on its output both make the
        // stage runnable.
        blk_rx.set_data_waker(waker(0));
        syn_tx.set_space_waker(waker(0));
        syn_rx.set_data_waker(waker(1));
        det_tx.set_space_waker(waker(1));
        det_rx.set_data_waker(waker(2));
        dec_tx.set_space_waker(waker(2));
        dec_rx.set_data_waker(waker(3));
        res_tx.set_space_waker(waker(3));
        // The driver sleeps on its own generation counter: results
        // arriving (or the stream finishing) and source-ring space both
        // wake it.
        let driver = {
            let pool = Arc::clone(pool);
            Arc::new(move || pool.signal_driver()) as super::ring::RingWaker
        };
        res_rx.set_data_waker(Arc::clone(&driver));
        blk_tx.set_space_waker(driver);
        (
            StreamChain {
                blk_tx,
                blk_rx,
                syn_tx,
                syn_rx,
                det_tx,
                det_rx,
                dec_tx,
                dec_rx,
                res_tx,
                res_rx,
                sync_carry: Mutex::new(None),
            },
            probes,
        )
    }
}

/// Pumps one capture-granularity stage: while the output has space,
/// pop-process-push; stop (without blocking) the moment input runs dry
/// or output fills — the ring wakers will requeue the task.
fn pump<I, O>(
    input: &Consumer<I>,
    output: &Producer<O>,
    obs: &StageObs,
    seq_of: impl Fn(&I) -> u64,
    mut body: impl FnMut(I) -> O,
) -> Result<(), RingError> {
    loop {
        if !output.has_capacity() {
            return Ok(());
        }
        match input.try_pop()? {
            TryPop::Empty => return Ok(()),
            TryPop::Finished => {
                output.finish();
                return Ok(());
            }
            TryPop::Item(item) => {
                let seq = seq_of(&item);
                let out = obs.run(seq, || body(item));
                match output.try_push(out) {
                    TryPush::Pushed => {}
                    TryPush::Full(_) => {
                        unreachable!("single producer pushed into checked capacity")
                    }
                    TryPush::Closed(_, e) => return Err(e),
                }
            }
        }
    }
}

/// Runs one task activation: drains as much of the stage's ready work as
/// its rings allow.
fn run_stage(
    stage: usize,
    chain: &StreamChain,
    receiver: &mut Receiver,
    block_size: usize,
    fault: &FaultPlan,
    obs: &StageObs,
) -> Result<(), RingError> {
    match STAGE_KINDS[stage] {
        StageKind::Sync => {
            let mut carry = chain.sync_carry.lock().expect("sync carry");
            loop {
                if !chain.syn_tx.has_capacity() {
                    return Ok(());
                }
                match chain.blk_rx.try_pop()? {
                    TryPop::Empty => return Ok(()),
                    TryPop::Finished => {
                        chain.syn_tx.finish();
                        return Ok(());
                    }
                    TryPop::Item(block) => {
                        let seq = block.seq;
                        let synced =
                            obs.run(seq, || sync_block(receiver, &mut carry, block, fault));
                        if let Some(cap) = synced {
                            match chain.syn_tx.try_push(cap) {
                                TryPush::Pushed => {}
                                TryPush::Full(_) => {
                                    unreachable!("single producer pushed into checked capacity")
                                }
                                TryPush::Closed(_, e) => return Err(e),
                            }
                        }
                    }
                }
            }
        }
        StageKind::Detect => pump(
            &chain.syn_rx,
            &chain.det_tx,
            obs,
            |cap| cap.seq,
            |cap| detect_capture(receiver, block_size, cap, fault),
        ),
        StageKind::Decode => pump(
            &chain.det_rx,
            &chain.dec_tx,
            obs,
            |cap| cap.seq,
            |cap| decode_capture(receiver, cap, fault),
        ),
        StageKind::Sic => pump(
            &chain.dec_rx,
            &chain.res_tx,
            obs,
            |cap| cap.seq,
            |cap| sic_capture(receiver, cap, fault),
        ),
    }
}

/// The worker thread body: local LIFO pop, rotating-scan FIFO steal,
/// park when dry.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    pool: &Arc<PoolState>,
    worker: usize,
    chains: &[StreamChain],
    receiver: &mut Receiver,
    block_size: usize,
    fault: &FaultPlan,
    pin: bool,
    obs: &StageObs,
) {
    WORKER_CTX.with(|ctx| ctx.set((pool.token, worker)));
    if pin {
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        super::affinity::pin_current_thread(worker % cpus);
    }
    // Rotating victim cursor: spread steal pressure instead of
    // hammering queue 0.
    let mut victim = worker;
    loop {
        if pool.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let local = pool.queues[worker].lock().expect("task queue").pop_back();
        let task = match local {
            Some(task) => {
                pool.local_hits.fetch_add(1, Ordering::Relaxed);
                Some(task)
            }
            None => steal(pool, worker, &mut victim),
        };
        match task {
            Some(task) => run_task(pool, task, chains, receiver, block_size, fault, obs),
            None => obs.wait(|| pool.park()),
        }
    }
    WORKER_CTX.with(|ctx| ctx.set((0, usize::MAX)));
}

fn steal(pool: &PoolState, worker: usize, victim: &mut usize) -> Option<u32> {
    let queues = pool.queues.len();
    for step in 1..=queues {
        let v = (*victim + step) % queues;
        if v == worker {
            continue;
        }
        if let Some(task) = pool.queues[v].lock().expect("task queue").pop_front() {
            pool.steals.fetch_add(1, Ordering::Relaxed);
            *victim = v;
            return Some(task);
        }
    }
    None
}

fn run_task(
    pool: &Arc<PoolState>,
    task: u32,
    chains: &[StreamChain],
    receiver: &mut Receiver,
    block_size: usize,
    fault: &FaultPlan,
    obs: &StageObs,
) {
    let state = &pool.tasks[task as usize];
    state.store(RUNNING, Ordering::SeqCst);
    let stream = task as usize / STAGES;
    let stage = task as usize % STAGES;
    let start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        run_stage(stage, &chains[stream], receiver, block_size, fault, obs)
    }));
    pool.busy_ns.fetch_add(
        start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        Ordering::Relaxed,
    );
    match outcome {
        Err(payload) => {
            state.store(IDLE, Ordering::SeqCst);
            pool.fail(format!(
                "{} stage panicked: {}",
                STAGE_KINDS[stage].name(),
                panic_message(payload)
            ));
        }
        Ok(Err(RingError::Poisoned(message))) => {
            state.store(IDLE, Ordering::SeqCst);
            pool.fail(message);
        }
        Ok(Err(RingError::Disconnected)) => {
            state.store(IDLE, Ordering::SeqCst);
            pool.fail("pipeline disconnected".into());
        }
        Ok(Ok(())) => loop {
            if state
                .compare_exchange(RUNNING, IDLE, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break;
            }
            // A wake raced the run: requeue (locally — we are on a
            // worker) and let the loop pick it right back up.
            if state
                .compare_exchange(RERUN, QUEUED, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                pool.enqueue(task);
                break;
            }
        },
    }
}

/// Everything `RxFlowgraph` hands the pool for one run.
pub(super) struct PoolParams<'a> {
    /// One receiver per worker (the pool size).
    pub(super) receivers: &'a mut [Receiver],
    pub(super) block_size: usize,
    pub(super) ring_capacity: usize,
    pub(super) pin: bool,
    pub(super) tracer: Option<&'a Tracer>,
    pub(super) metrics: Option<&'a RuntimeMetrics>,
    pub(super) fault: FaultPlan,
}

/// Runs `source` to exhaustion over the pool. The caller's thread is the
/// driver: it pumps source blocks into the per-stream chains, drains
/// results in order into `sink`, and sleeps on the driver generation
/// between passes — it never blocks on a ring, so a stalled sink
/// backpressures through ring capacity alone.
pub(super) fn run<S: SampleSource>(
    params: PoolParams<'_>,
    mut source: S,
    mut sink: impl FnMut(StreamResult),
) -> (RunStats, Option<FlowgraphError>) {
    let workers = params.receivers.len().max(1);
    let streams = source.streams();
    let pool = Arc::new(PoolState::new(streams * STAGES, workers));
    let mut chains = Vec::with_capacity(streams);
    let mut probes = Vec::with_capacity(streams);
    for stream in 0..streams {
        let (chain, probe) = StreamChain::new(params.ring_capacity, stream, &pool);
        chains.push(chain);
        probes.push(probe);
    }
    let chains = &chains[..];

    let trace_ctx = params.tracer.map(|t| (t.clone(), t.new_trace()));
    let root = trace_ctx
        .as_ref()
        .map(|(t, trace)| t.span(*trace, None, "flowgraph"));
    let root_id = root.as_ref().map(|g| g.id());

    let fault = params.fault;
    let block_size = params.block_size;
    let pin = params.pin;
    let started = Instant::now();
    let mut stats = RunStats::default();
    let mut failure: Option<FlowgraphError> = None;

    std::thread::scope(|scope| {
        for (worker, receiver) in params.receivers.iter_mut().enumerate() {
            let pool = Arc::clone(&pool);
            let trace_ctx = trace_ctx.clone();
            let metrics = params.metrics;
            scope.spawn(move || {
                // Each worker is a span: its stage_run/stage_wait
                // children show the interleave in Perfetto.
                let mut worker_span = trace_ctx
                    .as_ref()
                    .map(|(t, trace)| t.span(*trace, root_id, "worker"));
                if let Some(span) = worker_span.as_mut() {
                    span.set_arg(worker as u64);
                }
                let obs = StageObs {
                    ctx: trace_ctx
                        .as_ref()
                        .zip(worker_span.as_ref())
                        .map(|((t, trace), span)| (t.clone(), *trace, span.id())),
                    run_ns: metrics.map(|m| m.stage_run_ns.clone()),
                    wait_ns: metrics.map(|m| m.worker_park_ns.clone()),
                };
                worker_loop(
                    &pool, worker, chains, receiver, block_size, &fault, pin, &obs,
                );
            });
        }

        // ── The driver loop (caller thread) ──────────────────────────
        let mut emitter = InOrderEmitter::new();
        let mut pending_block: Option<SourceBlock> = None;
        let mut source_done = false;
        let mut finished = vec![false; streams];
        let mut finished_count = 0usize;
        loop {
            let seen = pool.driver_generation();
            // Pump: non-blocking pushes; a full ring stashes one block
            // (head-of-line, like the thread-per-stage source ring) and
            // retries after its space waker fires.
            if !source_done && failure.is_none() {
                loop {
                    let Some(block) = pending_block.take().or_else(|| source.next_block()) else {
                        source_done = true;
                        for chain in chains {
                            chain.blk_tx.finish();
                        }
                        break;
                    };
                    debug_assert!(block.stream < streams, "source emitted an unknown stream");
                    let stream = block.stream.min(streams.saturating_sub(1));
                    match chains[stream].blk_tx.try_push(block) {
                        TryPush::Pushed => stats.blocks += 1,
                        TryPush::Full(block) => {
                            pending_block = Some(block);
                            break;
                        }
                        TryPush::Closed(_, RingError::Poisoned(message)) => {
                            failure = Some(FlowgraphError { message });
                            break;
                        }
                        TryPush::Closed(_, RingError::Disconnected) => {
                            failure = Some(FlowgraphError {
                                message: "pipeline disconnected".into(),
                            });
                            break;
                        }
                    }
                }
            }
            // Collect: drain every stream's results, emit in order.
            for (stream, chain) in chains.iter().enumerate() {
                if finished[stream] {
                    continue;
                }
                loop {
                    match chain.res_rx.try_pop() {
                        Ok(TryPop::Item(result)) => {
                            stats.captures += 1;
                            emitter.insert(result.stream, result.seq, result.report);
                            for ready in emitter.take_ready() {
                                sink(ready);
                            }
                        }
                        Ok(TryPop::Empty) => break,
                        Ok(TryPop::Finished) => {
                            finished[stream] = true;
                            finished_count += 1;
                            break;
                        }
                        Err(RingError::Poisoned(message)) => {
                            failure = Some(FlowgraphError { message });
                            break;
                        }
                        Err(RingError::Disconnected) => {
                            failure = Some(FlowgraphError {
                                message: "pipeline disconnected".into(),
                            });
                            break;
                        }
                    }
                }
            }
            if failure.is_none() {
                if let Some(message) = pool.take_failure() {
                    failure = Some(FlowgraphError { message });
                }
            }
            if failure.is_some() || (source_done && finished_count == streams) {
                break;
            }
            pool.driver_wait(seen);
        }
        pool.shutdown_all();
    });

    stats.ring_max_depth = vec![0; 5];
    for probe in &probes {
        stats.ring_max_depth[0] = stats.ring_max_depth[0].max(probe.blk.max_depth());
        stats.ring_max_depth[1] = stats.ring_max_depth[1].max(probe.syn.max_depth());
        stats.ring_max_depth[2] = stats.ring_max_depth[2].max(probe.det.max_depth());
        stats.ring_max_depth[3] = stats.ring_max_depth[3].max(probe.dec.max_depth());
        stats.ring_max_depth[4] = stats.ring_max_depth[4].max(probe.res.max_depth());
    }
    stats.steals = pool.steals.load(Ordering::Relaxed);
    stats.local_hits = pool.local_hits.load(Ordering::Relaxed);
    stats.parks = pool.parks.load(Ordering::Relaxed);
    stats.park_ns = pool.park_ns.load(Ordering::Relaxed);
    stats.busy_ns = pool.busy_ns.load(Ordering::Relaxed);
    if let Some(metrics) = params.metrics {
        let wall = started.elapsed().as_nanos().max(1) as f64;
        let utilization = stats.busy_ns as f64 / (wall * workers as f64);
        metrics.pool_utilization.set(utilization.min(1.0));
    }
    if failure.is_none() {
        if let Some(message) = pool.take_failure() {
            failure = Some(FlowgraphError { message });
        }
    }
    (stats, failure)
}

/// N independent capture streams multiplexed over one flowgraph — the
/// generalization of [`crate::stream_pool::StreamPool`] onto the
/// work-stealing runtime. Queue captures with
/// [`MultiStreamFlowgraph::submit`], then [`MultiStreamFlowgraph::run`]
/// drains the whole batch through one pool with per-stream in-order
/// emission.
///
/// Unlike `StreamPool` (whole-capture tasks, one receiver per OS
/// thread), every stage of every stream here is a stealable task, so
/// hundreds of streams share a fixed worker count — and decisions are
/// bit-identical to running each stream through [`super::Scheduler::Inline`].
///
/// # Examples
///
/// ```
/// use cbma_codes::{CodeFamily, GoldFamily};
/// use cbma_rx::runtime::{MultiStreamFlowgraph, RuntimeConfig, Scheduler};
/// use cbma_rx::ReceiverConfig;
/// use cbma_tag::phy::PhyProfile;
/// use cbma_types::Iq;
///
/// let codes = GoldFamily::new(5)?.codes(2)?;
/// let runtime = RuntimeConfig {
///     block_size: 512,
///     ring_capacity: 2,
///     scheduler: Scheduler::WorkStealing { workers: 2, pin: false },
/// };
/// let mut multi = MultiStreamFlowgraph::new(
///     codes,
///     PhyProfile::paper_default(),
///     ReceiverConfig::default(),
///     runtime,
/// );
/// for stream in 0..3 {
///     multi.submit(stream, vec![Iq::ZERO; 1500]);
/// }
/// let out = multi.run().expect("no stage fails");
/// assert_eq!(out.results.len(), 3);
/// # Ok::<(), cbma_types::CbmaError>(())
/// ```
pub struct MultiStreamFlowgraph {
    flow: RxFlowgraph,
    /// Captures queued per stream for the next run.
    queued: Vec<VecDeque<Vec<Iq>>>,
}

impl MultiStreamFlowgraph {
    /// Builds the multiplexer. The `runtime.scheduler` is typically
    /// [`super::Scheduler::WorkStealing`], but any scheduler works —
    /// the chains and emission order are scheduler-independent.
    pub fn new(
        codes: Vec<PnCode>,
        phy: PhyProfile,
        config: ReceiverConfig,
        runtime: RuntimeConfig,
    ) -> MultiStreamFlowgraph {
        MultiStreamFlowgraph {
            flow: RxFlowgraph::new(codes, phy, config, runtime),
            queued: Vec::new(),
        }
    }

    /// See [`RxFlowgraph::attach_tracer`].
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        self.flow.attach_tracer(tracer);
    }

    /// See [`RxFlowgraph::attach_metrics`].
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.flow.attach_metrics(registry);
    }

    /// Queues one capture on `stream` (streams grow on first use) and
    /// returns the seq its result will carry in the next
    /// [`MultiStreamFlowgraph::run`] — the capture's position in the
    /// stream's current batch.
    pub fn submit(&mut self, stream: usize, capture: Vec<Iq>) -> u64 {
        while self.queued.len() <= stream {
            self.queued.push(VecDeque::new());
        }
        let queue = &mut self.queued[stream];
        queue.push_back(capture);
        (queue.len() - 1) as u64
    }

    /// Captures queued for the next run.
    pub fn pending(&self) -> usize {
        self.queued.iter().map(|q| q.len()).sum()
    }

    /// Streams seen so far.
    pub fn streams(&self) -> usize {
        self.queued.len()
    }

    /// Runs the queued batch to completion; results arrive per stream in
    /// submission order. The batch is consumed either way — a failed run
    /// does not replay it.
    pub fn run(&mut self) -> Result<RunOutput, FlowgraphError> {
        let mut results = Vec::new();
        let stats = self.run_with_sink(|r| results.push(r))?;
        Ok(RunOutput { results, stats })
    }

    /// Like [`MultiStreamFlowgraph::run`] with streaming emission into
    /// `sink`.
    pub fn run_with_sink(
        &mut self,
        sink: impl FnMut(StreamResult),
    ) -> Result<RunStats, FlowgraphError> {
        let mut source = CaptureSource::new(self.flow.runtime_config().block_size);
        for (stream, queue) in self.queued.iter_mut().enumerate() {
            for capture in queue.drain(..) {
                source.push(stream, capture);
            }
        }
        self.flow.run_with_sink(source, sink)
    }
}

impl std::fmt::Debug for MultiStreamFlowgraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiStreamFlowgraph")
            .field("streams", &self.queued.len())
            .field("pending", &self.pending())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::super::Scheduler;
    use super::*;
    use cbma_codes::{CodeFamily, GoldFamily};

    fn multi(workers: usize) -> MultiStreamFlowgraph {
        let codes = GoldFamily::new(5).unwrap().codes(2).unwrap();
        MultiStreamFlowgraph::new(
            codes,
            PhyProfile::paper_default(),
            ReceiverConfig::default(),
            RuntimeConfig {
                block_size: 256,
                ring_capacity: 2,
                scheduler: Scheduler::WorkStealing {
                    workers,
                    pin: false,
                },
            },
        )
    }

    #[test]
    fn multiplexes_streams_with_in_order_emission() {
        let mut multi = multi(3);
        for stream in 0..4 {
            for _ in 0..3 {
                multi.submit(stream, vec![Iq::ZERO; 700]);
            }
        }
        assert_eq!(multi.pending(), 12);
        let out = multi.run().expect("clean run");
        assert_eq!(out.results.len(), 12);
        assert_eq!(multi.pending(), 0);
        for stream in 0..4 {
            let seqs: Vec<u64> = out
                .results
                .iter()
                .filter(|r| r.stream == stream)
                .map(|r| r.seq)
                .collect();
            assert_eq!(seqs, vec![0, 1, 2], "stream {stream}");
        }
        // The batch actually exercised the pool.
        assert_eq!(out.stats.captures, 12);
        assert!(out.stats.steals + out.stats.local_hits > 0);
    }

    #[test]
    fn reuse_across_batches_restarts_seqs() {
        let mut multi = multi(2);
        multi.submit(0, vec![Iq::ZERO; 500]);
        let first = multi.run().expect("clean run");
        assert_eq!(first.results.len(), 1);
        let seq = multi.submit(0, vec![Iq::ZERO; 500]);
        assert_eq!(seq, 0, "seqs are per batch");
        let second = multi.run().expect("clean run");
        assert_eq!(second.results.len(), 1);
        assert_eq!(second.results[0].seq, 0);
    }

    #[test]
    fn empty_run_terminates() {
        let mut multi = multi(2);
        let out = multi.run().expect("empty batch is a no-op");
        assert!(out.results.is_empty());
    }
}
