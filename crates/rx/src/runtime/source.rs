//! Sample sources: where the streaming flowgraph's IQ blocks come from.
//!
//! A [`SampleSource`] turns contiguous captures into a sequence of
//! [`SourceBlock`]s — the granularity the pipeline actually moves. Block
//! size is the *source's* choice and the receiver's decisions must not
//! depend on it: every stage either works per-sample (frame sync) or
//! carries its state across block edges (the overlap-save correlator's
//! streamed walk), which the block-boundary equivalence suite
//! (`crates/rx/tests/streaming_equivalence.rs`) pins down.

use std::collections::VecDeque;

use cbma_types::Iq;

/// One block of IQ samples flowing into the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceBlock {
    /// The capture stream this block belongs to.
    pub stream: usize,
    /// Per-stream capture index (0-based): which capture of the stream
    /// the block continues.
    pub seq: u64,
    /// The samples. May be empty only on the final block of an empty
    /// capture.
    pub samples: Vec<Iq>,
    /// Marks the capture's final block: the receiver may decide once it
    /// has seen this.
    pub last: bool,
}

/// A producer of [`SourceBlock`]s. Blocks of one `(stream, seq)` capture
/// arrive in sample order and end with exactly one `last` block; captures
/// of one stream arrive in `seq` order. Blocks of *different* streams may
/// interleave arbitrarily.
pub trait SampleSource {
    /// Number of capture streams the source produces (stream ids are
    /// `0..streams()`).
    fn streams(&self) -> usize;

    /// The next block, or `None` once the source is exhausted.
    fn next_block(&mut self) -> Option<SourceBlock>;
}

struct StreamQueue {
    captures: VecDeque<Vec<Iq>>,
    /// Seq of the capture at the queue front.
    seq: u64,
    /// Read offset into the front capture.
    offset: usize,
}

/// The standard source: whole captures, chopped into `block_size` sample
/// blocks, round-robined across streams so a multi-stream pipeline sees
/// interleaved traffic.
///
/// # Examples
///
/// ```
/// use cbma_rx::runtime::{CaptureSource, SampleSource};
/// use cbma_types::Iq;
///
/// let mut src = CaptureSource::new(4);
/// src.push(0, vec![Iq::ZERO; 10]);
/// let mut blocks = 0;
/// while let Some(block) = src.next_block() {
///     assert_eq!(block.stream, 0);
///     blocks += 1;
///     if block.last {
///         break;
///     }
/// }
/// assert_eq!(blocks, 3); // 4 + 4 + 2 samples
/// ```
#[derive(Default)]
pub struct CaptureSource {
    block_size: usize,
    streams: Vec<StreamQueue>,
    /// Round-robin cursor.
    next: usize,
}

impl CaptureSource {
    /// A source that chops captures into `block_size`-sample blocks
    /// (clamped to ≥ 1).
    pub fn new(block_size: usize) -> CaptureSource {
        CaptureSource {
            block_size: block_size.max(1),
            streams: Vec::new(),
            next: 0,
        }
    }

    /// Convenience: a single-stream source preloaded with `captures`.
    pub fn single_stream(block_size: usize, captures: Vec<Vec<Iq>>) -> CaptureSource {
        let mut src = CaptureSource::new(block_size);
        for capture in captures {
            src.push(0, capture);
        }
        src
    }

    /// Queues one capture on `stream` (streams grow on first use).
    /// Returns the capture's per-stream seq.
    pub fn push(&mut self, stream: usize, capture: Vec<Iq>) -> u64 {
        while self.streams.len() <= stream {
            self.streams.push(StreamQueue {
                captures: VecDeque::new(),
                seq: 0,
                offset: 0,
            });
        }
        let q = &mut self.streams[stream];
        let seq = q.seq + q.captures.len() as u64;
        q.captures.push_back(capture);
        seq
    }

    /// The configured block size.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.block_size
    }
}

impl SampleSource for CaptureSource {
    fn streams(&self) -> usize {
        self.streams.len()
    }

    fn next_block(&mut self) -> Option<SourceBlock> {
        let n = self.streams.len();
        for _ in 0..n {
            let s = self.next;
            self.next = (self.next + 1) % n;
            let q = &mut self.streams[s];
            let Some(front) = q.captures.front() else {
                continue;
            };
            let end = (q.offset + self.block_size).min(front.len());
            let samples = front[q.offset..end].to_vec();
            let last = end == front.len();
            let block = SourceBlock {
                stream: s,
                seq: q.seq,
                samples,
                last,
            };
            if last {
                q.captures.pop_front();
                q.seq += 1;
                q.offset = 0;
            } else {
                q.offset = end;
            }
            return Some(block);
        }
        None
    }
}

impl std::fmt::Debug for CaptureSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CaptureSource")
            .field("block_size", &self.block_size)
            .field("streams", &self.streams.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(n: usize, tag: f64) -> Vec<Iq> {
        (0..n).map(|i| Iq::new(tag, i as f64)).collect()
    }

    #[test]
    fn chops_and_reassembles_exactly() {
        let capture = samples(10, 1.0);
        let mut src = CaptureSource::single_stream(3, vec![capture.clone()]);
        let mut got = Vec::new();
        let mut lasts = 0;
        while let Some(block) = src.next_block() {
            assert_eq!((block.stream, block.seq), (0, 0));
            got.extend(block.samples);
            lasts += u32::from(block.last);
        }
        assert_eq!(got, capture);
        assert_eq!(lasts, 1);
    }

    #[test]
    fn empty_capture_yields_one_empty_last_block() {
        let mut src = CaptureSource::single_stream(8, vec![Vec::new()]);
        let block = src.next_block().unwrap();
        assert!(block.samples.is_empty());
        assert!(block.last);
        assert!(src.next_block().is_none());
    }

    #[test]
    fn streams_interleave_and_keep_seq_order() {
        let mut src = CaptureSource::new(4);
        src.push(0, samples(6, 0.0));
        assert_eq!(src.push(0, samples(2, 0.5)), 1);
        src.push(1, samples(5, 1.0));
        let mut seen: Vec<(usize, u64, usize, bool)> = Vec::new();
        while let Some(b) = src.next_block() {
            seen.push((b.stream, b.seq, b.samples.len(), b.last));
        }
        // Each stream's blocks appear in (seq, offset) order.
        for stream in 0..2 {
            let per: Vec<_> = seen.iter().filter(|e| e.0 == stream).collect();
            let mut seqs: Vec<u64> = per.iter().map(|e| e.1).collect();
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            assert_eq!(seqs, sorted);
            seqs.dedup();
            // One `last` per capture.
            assert_eq!(per.iter().filter(|e| e.3).count(), seqs.len());
        }
        // All samples accounted for.
        let total: usize = seen.iter().map(|e| e.2).sum();
        assert_eq!(total, 6 + 2 + 5);
    }
}
