//! Minimal CPU-affinity shim: pin the calling thread to one CPU.
//!
//! The workspace takes no external dependencies (see `vendor/README.md`
//! for the shim contract), so instead of `libc` this issues the
//! `sched_setaffinity(2)` syscall directly on Linux x86_64/aarch64 and
//! degrades to a no-op everywhere else. Pinning is strictly a placement
//! hint for the work-stealing pool: the scheduler's decisions (and the
//! receiver's) are identical with or without it, which
//! `crates/rx/tests/streaming_equivalence.rs` pins.

/// Pins the calling thread to `cpu` (taken modulo the mask width).
/// Returns whether the kernel accepted the mask; `false` on unsupported
/// platforms or syscall failure — callers treat that as "run unpinned".
pub fn pin_current_thread(cpu: usize) -> bool {
    imp::pin_current_thread(cpu)
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod imp {
    /// The kernel's historical maximum mask width; one `u64` word per 64
    /// CPUs.
    const MASK_BITS: usize = 1024;

    pub fn pin_current_thread(cpu: usize) -> bool {
        let mut mask = [0u64; MASK_BITS / 64];
        let cpu = cpu % MASK_BITS;
        mask[cpu / 64] = 1u64 << (cpu % 64);
        // pid 0 = the calling thread.
        let ret = sched_setaffinity(0, core::mem::size_of_val(&mask), mask.as_ptr());
        ret == 0
    }

    #[cfg(target_arch = "x86_64")]
    fn sched_setaffinity(pid: i64, len: usize, mask: *const u64) -> i64 {
        let ret: i64;
        // SAFETY: syscall 203 (sched_setaffinity) reads `len` bytes from
        // `mask`, which points at a live, properly sized local array; it
        // writes no user memory.
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") 203i64 => ret,
                in("rdi") pid,
                in("rsi") len,
                in("rdx") mask,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    fn sched_setaffinity(pid: i64, len: usize, mask: *const u64) -> i64 {
        let ret: i64;
        // SAFETY: syscall 122 (sched_setaffinity) reads `len` bytes from
        // `mask`, which points at a live, properly sized local array; it
        // writes no user memory.
        unsafe {
            core::arch::asm!(
                "svc 0",
                in("x8") 122i64,
                inlateout("x0") pid => ret,
                in("x1") len,
                in("x2") mask,
                options(nostack),
            );
        }
        ret
    }
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod imp {
    pub fn pin_current_thread(_cpu: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_is_a_hint_not_a_hazard() {
        // On supported platforms this should succeed for CPU 0 (every
        // machine has one); elsewhere it must report false rather than
        // fail. Either way the thread keeps running.
        let pinned = pin_current_thread(0);
        if cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) {
            assert!(pinned, "pinning to CPU 0 should succeed on Linux");
        } else {
            assert!(!pinned);
        }
        // Out-of-range CPUs wrap into the mask; the syscall may reject a
        // CPU the machine lacks — either boolean is acceptable, no panic.
        let _ = pin_current_thread(4096);
    }
}
