//! Bounded single-producer single-consumer ring buffers.
//!
//! The streaming flowgraph's stages are connected by these rings: a
//! fixed-capacity circular buffer behind a mutex with two condvars
//! (`not_full` for the producer, `not_empty` for the consumer). The
//! capacity bound is the backpressure mechanism — a stalled consumer
//! blocks its producer after at most `capacity` queued items, and the
//! stall propagates stage by stage back to the sample source, so total
//! in-flight memory is bounded by the ring capacities no matter how slow
//! the sink is.
//!
//! Notification is edge-triggered: the condvars (and the optional
//! [`RingWaker`] hooks) fire only on the empty→nonempty and
//! full→nonfull transitions, not on every push/pop. For an SPSC ring
//! this loses no wakeups — the consumer only ever blocks when it
//! observed `len == 0` (so the 0→1 push is the one that must signal)
//! and the producer only when it observed `len == capacity` — while a
//! deep ring under steady flow issues no notifications at all.
//! [`DepthProbe::notify_count`] counts the signals actually issued.
//!
//! The waker hooks are how the work-stealing scheduler turns ring
//! transitions into task readiness without parking a worker on a
//! condvar: empty→nonempty (and finish/poison) invokes the consumer
//! side's `data` waker, full→nonfull (and disconnect/poison) the
//! producer side's `space` waker. Wakers run after the ring lock is
//! released, so they may take their own locks freely.
//!
//! Shutdown and failure are first-class:
//!
//! * dropping (or [`Producer::finish`]ing) the producer ends the stream —
//!   the consumer drains what is buffered and then sees `Ok(None)`;
//! * dropping the consumer disconnects the ring — the producer's next
//!   push fails with [`RingError::Disconnected`] instead of blocking
//!   forever, which is how upstream stages learn a downstream stage died;
//! * [`Producer::poison`] marks the ring failed with a message — both
//!   endpoints see [`RingError::Poisoned`] immediately, which is how a
//!   panicking stage reports *why* the flowgraph stopped.
//!
//! The implementation is deliberately a model-checkable safe-Rust ring
//! (`Vec<Option<T>>` + head/len indices, no unsafe, no atomics beyond
//! the mutex) — `crates/rx/tests/ring_props.rs` property-tests it
//! against a `VecDeque` oracle and stress-tests the two-thread path.

use std::sync::{Arc, Condvar, Mutex};

/// A callback fired (outside the ring lock) when a ring transition makes
/// new progress possible for one endpoint.
pub type RingWaker = Arc<dyn Fn() + Send + Sync>;

/// Why a ring operation could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingError {
    /// The other endpoint was dropped: the stream can never make
    /// progress again (but was not abnormal).
    Disconnected,
    /// A stage failed and poisoned the flowgraph; the message says which
    /// and why.
    Poisoned(String),
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::Disconnected => write!(f, "ring disconnected"),
            RingError::Poisoned(msg) => write!(f, "ring poisoned: {msg}"),
        }
    }
}

impl std::error::Error for RingError {}

/// Outcome of a non-blocking [`Producer::try_push`].
#[derive(Debug)]
pub enum TryPush<T> {
    /// The item was queued.
    Pushed,
    /// The ring is at capacity; the item comes back.
    Full(T),
    /// The ring can never accept the item; it comes back with the cause.
    Closed(T, RingError),
}

/// Outcome of a non-blocking [`Consumer::try_pop`].
#[derive(Debug)]
pub enum TryPop<T> {
    /// The oldest queued item.
    Item(T),
    /// Nothing buffered right now, but the producer is still live.
    Empty,
    /// The producer finished and the ring is drained.
    Finished,
}

struct RingState<T> {
    /// Fixed-capacity circular storage; `None` marks an empty slot.
    slots: Vec<Option<T>>,
    /// Index of the oldest item.
    head: usize,
    /// Items currently queued.
    len: usize,
    producer_done: bool,
    consumer_gone: bool,
    poisoned: Option<String>,
    /// High-water mark of `len`, for backpressure diagnostics.
    max_depth: usize,
    /// Condvar notifications issued over the ring's lifetime.
    notifies: u64,
    /// Fired when the consumer side gains something to observe
    /// (empty→nonempty, finish, poison).
    data_waker: Option<RingWaker>,
    /// Fired when the producer side gains something to observe
    /// (full→nonfull, disconnect, poison).
    space_waker: Option<RingWaker>,
}

struct Shared<T> {
    state: Mutex<RingState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> Shared<T> {
    /// Signals the consumer side after a state change that created data
    /// (or ended the stream). Call with the lock held; the returned
    /// waker must be invoked after the lock is dropped.
    fn notify_data(&self, state: &mut RingState<T>) -> Option<RingWaker> {
        state.notifies += 1;
        self.not_empty.notify_one();
        state.data_waker.clone()
    }

    /// Signals the producer side after a state change that created
    /// space (or closed the ring). Same locking discipline as
    /// [`Shared::notify_data`].
    fn notify_space(&self, state: &mut RingState<T>) -> Option<RingWaker> {
        state.notifies += 1;
        self.not_full.notify_one();
        state.space_waker.clone()
    }
}

/// Invokes a deferred waker (outside the ring lock).
fn fire(waker: Option<RingWaker>) {
    if let Some(waker) = waker {
        waker();
    }
}

/// Creates a bounded SPSC ring holding at most `capacity` items
/// (clamped to ≥ 1). Returns the two endpoints; each is `Send` and owns
/// its side of the protocol.
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let capacity = capacity.max(1);
    let shared = Arc::new(Shared {
        state: Mutex::new(RingState {
            slots: (0..capacity).map(|_| None).collect(),
            head: 0,
            len: 0,
            producer_done: false,
            consumer_gone: false,
            poisoned: None,
            max_depth: 0,
            notifies: 0,
            data_waker: None,
            space_waker: None,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
        },
        Consumer { shared },
    )
}

/// The sending endpoint of a [`ring`].
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving endpoint of a [`ring`].
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

/// A passive observer of one ring's statistics; keeps the state alive
/// after both endpoints drop so post-run diagnostics can read the
/// high-water mark and the notification count.
pub struct DepthProbe<T> {
    shared: Arc<Shared<T>>,
}

impl<T> DepthProbe<T> {
    /// The deepest the ring ever got.
    pub fn max_depth(&self) -> usize {
        self.shared.state.lock().expect("ring lock").max_depth
    }

    /// How many condvar notifications the ring issued. With
    /// edge-triggered signalling this counts state *transitions*
    /// (plus shutdown broadcasts), not operations.
    pub fn notify_count(&self) -> u64 {
        self.shared.state.lock().expect("ring lock").notifies
    }
}

impl<T> Producer<T> {
    /// Queues `item`, blocking while the ring is full. Fails — returning
    /// immediately, never blocking forever — once the consumer is gone
    /// or the ring is poisoned.
    pub fn push(&self, item: T) -> Result<(), RingError> {
        let mut state = self.shared.state.lock().expect("ring lock");
        loop {
            if let Some(msg) = &state.poisoned {
                return Err(RingError::Poisoned(msg.clone()));
            }
            if state.consumer_gone {
                return Err(RingError::Disconnected);
            }
            if state.len < state.slots.len() {
                break;
            }
            state = self.shared.not_full.wait(state).expect("ring lock");
        }
        let cap = state.slots.len();
        let tail = (state.head + state.len) % cap;
        debug_assert!(state.slots[tail].is_none(), "occupied tail slot");
        let was_empty = state.len == 0;
        state.slots[tail] = Some(item);
        state.len += 1;
        state.max_depth = state.max_depth.max(state.len);
        let waker = if was_empty {
            self.shared.notify_data(&mut state)
        } else {
            None
        };
        drop(state);
        fire(waker);
        Ok(())
    }

    /// Non-blocking [`Producer::push`].
    pub fn try_push(&self, item: T) -> TryPush<T> {
        let mut state = self.shared.state.lock().expect("ring lock");
        if let Some(msg) = &state.poisoned {
            return TryPush::Closed(item, RingError::Poisoned(msg.clone()));
        }
        if state.consumer_gone {
            return TryPush::Closed(item, RingError::Disconnected);
        }
        if state.len == state.slots.len() {
            return TryPush::Full(item);
        }
        let cap = state.slots.len();
        let tail = (state.head + state.len) % cap;
        let was_empty = state.len == 0;
        state.slots[tail] = Some(item);
        state.len += 1;
        state.max_depth = state.max_depth.max(state.len);
        let waker = if was_empty {
            self.shared.notify_data(&mut state)
        } else {
            None
        };
        drop(state);
        fire(waker);
        TryPush::Pushed
    }

    /// Whether a `try_push` right now would be accepted for capacity.
    /// With a single producer the answer can only turn *more* true until
    /// that producer pushes, so a stage may check space before popping
    /// the input it would process.
    pub fn has_capacity(&self) -> bool {
        let state = self.shared.state.lock().expect("ring lock");
        state.len < state.slots.len()
    }

    /// Ends the stream: the consumer drains the buffered items and then
    /// sees `Ok(None)`. Dropping the producer does the same.
    pub fn finish(&self) {
        let mut state = self.shared.state.lock().expect("ring lock");
        if state.producer_done {
            return;
        }
        state.producer_done = true;
        state.notifies += 1;
        self.shared.not_empty.notify_all();
        let waker = state.data_waker.clone();
        drop(state);
        fire(waker);
    }

    /// Marks the ring failed: both endpoints see
    /// [`RingError::Poisoned`] with `message` from now on. Used by a
    /// panicking stage to carry its panic message to the sink.
    pub fn poison(&self, message: impl Into<String>) {
        let mut state = self.shared.state.lock().expect("ring lock");
        if state.poisoned.is_none() {
            state.poisoned = Some(message.into());
        }
        state.notifies += 1;
        self.shared.not_full.notify_all();
        self.shared.not_empty.notify_all();
        let data = state.data_waker.clone();
        let space = state.space_waker.clone();
        drop(state);
        fire(data);
        fire(space);
    }

    /// Installs the waker fired when the ring gains space (or closes).
    /// The producer side owns this hook: it is the endpoint that waits
    /// for space.
    pub fn set_space_waker(&self, waker: RingWaker) {
        let mut state = self.shared.state.lock().expect("ring lock");
        state.space_waker = Some(waker);
    }

    /// A depth observer for this ring.
    pub fn probe(&self) -> DepthProbe<T> {
        DepthProbe {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.finish();
    }
}

impl<T> Consumer<T> {
    /// The next item, blocking while the ring is empty and the producer
    /// live. `Ok(None)` once the producer finished and the ring drained;
    /// `Err` if the ring was poisoned.
    pub fn pop(&self) -> Result<Option<T>, RingError> {
        let mut state = self.shared.state.lock().expect("ring lock");
        loop {
            if let Some(msg) = &state.poisoned {
                return Err(RingError::Poisoned(msg.clone()));
            }
            if state.len > 0 {
                break;
            }
            if state.producer_done {
                return Ok(None);
            }
            state = self.shared.not_empty.wait(state).expect("ring lock");
        }
        let was_full = state.len == state.slots.len();
        let head = state.head;
        let item = state.slots[head].take().expect("len > 0");
        state.head = (head + 1) % state.slots.len();
        state.len -= 1;
        let waker = if was_full {
            self.shared.notify_space(&mut state)
        } else {
            None
        };
        drop(state);
        fire(waker);
        Ok(Some(item))
    }

    /// Non-blocking [`Consumer::pop`].
    pub fn try_pop(&self) -> Result<TryPop<T>, RingError> {
        let mut state = self.shared.state.lock().expect("ring lock");
        if let Some(msg) = &state.poisoned {
            return Err(RingError::Poisoned(msg.clone()));
        }
        if state.len == 0 {
            return Ok(if state.producer_done {
                TryPop::Finished
            } else {
                TryPop::Empty
            });
        }
        let was_full = state.len == state.slots.len();
        let head = state.head;
        let item = state.slots[head].take().expect("len > 0");
        state.head = (head + 1) % state.slots.len();
        state.len -= 1;
        let waker = if was_full {
            self.shared.notify_space(&mut state)
        } else {
            None
        };
        drop(state);
        fire(waker);
        Ok(TryPop::Item(item))
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.shared.state.lock().expect("ring lock").len
    }

    /// Installs the waker fired when the ring gains data (or the
    /// producer finishes / poisons). The consumer side owns this hook:
    /// it is the endpoint that waits for data.
    pub fn set_data_waker(&self, waker: RingWaker) {
        let mut state = self.shared.state.lock().expect("ring lock");
        state.data_waker = Some(waker);
    }

    /// A depth observer for this ring.
    pub fn probe(&self) -> DepthProbe<T> {
        DepthProbe {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("ring lock");
        state.consumer_gone = true;
        state.notifies += 1;
        self.shared.not_full.notify_all();
        let waker = state.space_waker.clone();
        drop(state);
        fire(waker);
    }
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = ring::<u32>(3);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(rx.pop().unwrap(), Some(1));
        tx.push(3).unwrap();
        tx.push(4).unwrap();
        assert!(matches!(tx.try_push(5), TryPush::Full(5)));
        assert_eq!(rx.pop().unwrap(), Some(2));
        assert_eq!(rx.pop().unwrap(), Some(3));
        assert_eq!(rx.pop().unwrap(), Some(4));
        assert!(matches!(rx.try_pop().unwrap(), TryPop::Empty));
        drop(tx);
        assert_eq!(rx.pop().unwrap(), None);
    }

    #[test]
    fn producer_drop_finishes_consumer_drop_disconnects() {
        let (tx, rx) = ring::<u8>(2);
        tx.push(9).unwrap();
        drop(tx);
        assert_eq!(rx.pop().unwrap(), Some(9));
        assert_eq!(rx.pop().unwrap(), None);

        let (tx, rx) = ring::<u8>(2);
        drop(rx);
        assert_eq!(tx.push(1), Err(RingError::Disconnected));
    }

    #[test]
    fn poison_reaches_both_ends_with_the_message() {
        let (tx, rx) = ring::<u8>(2);
        tx.push(1).unwrap();
        tx.poison("stage exploded");
        assert_eq!(
            rx.pop(),
            Err(RingError::Poisoned("stage exploded".into()))
        );
        assert_eq!(
            tx.push(2),
            Err(RingError::Poisoned("stage exploded".into()))
        );
    }

    #[test]
    fn max_depth_tracks_high_water_mark() {
        let (tx, rx) = ring::<u8>(4);
        let probe = rx.probe();
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        tx.push(3).unwrap();
        rx.pop().unwrap();
        rx.pop().unwrap();
        tx.push(4).unwrap();
        assert_eq!(probe.max_depth(), 3);
        drop(tx);
        drop(rx);
        // The probe outlives both endpoints.
        assert_eq!(probe.max_depth(), 3);
    }

    #[test]
    fn has_capacity_tracks_fullness() {
        let (tx, rx) = ring::<u8>(2);
        assert!(tx.has_capacity());
        tx.push(1).unwrap();
        assert!(tx.has_capacity());
        tx.push(2).unwrap();
        assert!(!tx.has_capacity());
        rx.pop().unwrap();
        assert!(tx.has_capacity());
    }

    #[test]
    fn wakers_fire_on_transitions_only() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let (tx, rx) = ring::<u8>(3);
        let data = Arc::new(AtomicUsize::new(0));
        let space = Arc::new(AtomicUsize::new(0));
        {
            let data = Arc::clone(&data);
            rx.set_data_waker(Arc::new(move || {
                data.fetch_add(1, Ordering::SeqCst);
            }));
        }
        {
            let space = Arc::clone(&space);
            tx.set_space_waker(Arc::new(move || {
                space.fetch_add(1, Ordering::SeqCst);
            }));
        }
        tx.push(1).unwrap(); // 0→1: data fires
        tx.push(2).unwrap(); // 1→2: silent
        tx.push(3).unwrap(); // 2→3 (full): silent
        assert_eq!(data.load(Ordering::SeqCst), 1);
        rx.pop().unwrap(); // full→nonfull: space fires
        rx.pop().unwrap(); // silent
        assert_eq!(space.load(Ordering::SeqCst), 1);
        rx.pop().unwrap(); // drains to empty: silent
        tx.push(4).unwrap(); // 0→1 again: data fires
        assert_eq!(data.load(Ordering::SeqCst), 2);
        tx.finish(); // stream end: data fires so the consumer task runs
        assert_eq!(data.load(Ordering::SeqCst), 3);
        drop(rx); // disconnect: space fires
        assert_eq!(space.load(Ordering::SeqCst), 2);
    }
}
