//! Bounded single-producer single-consumer ring buffers.
//!
//! The streaming flowgraph's stages are connected by these rings: a
//! fixed-capacity circular buffer behind a mutex with two condvars
//! (`not_full` for the producer, `not_empty` for the consumer). The
//! capacity bound is the backpressure mechanism — a stalled consumer
//! blocks its producer after at most `capacity` queued items, and the
//! stall propagates stage by stage back to the sample source, so total
//! in-flight memory is bounded by the ring capacities no matter how slow
//! the sink is.
//!
//! Shutdown and failure are first-class:
//!
//! * dropping (or [`Producer::finish`]ing) the producer ends the stream —
//!   the consumer drains what is buffered and then sees `Ok(None)`;
//! * dropping the consumer disconnects the ring — the producer's next
//!   push fails with [`RingError::Disconnected`] instead of blocking
//!   forever, which is how upstream stages learn a downstream stage died;
//! * [`Producer::poison`] marks the ring failed with a message — both
//!   endpoints see [`RingError::Poisoned`] immediately, which is how a
//!   panicking stage reports *why* the flowgraph stopped.
//!
//! The implementation is deliberately a model-checkable safe-Rust ring
//! (`Vec<Option<T>>` + head/len indices, no unsafe, no atomics beyond
//! the mutex) — `crates/rx/tests/ring_props.rs` property-tests it
//! against a `VecDeque` oracle and stress-tests the two-thread path.

use std::sync::{Arc, Condvar, Mutex};

/// Why a ring operation could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingError {
    /// The other endpoint was dropped: the stream can never make
    /// progress again (but was not abnormal).
    Disconnected,
    /// A stage failed and poisoned the flowgraph; the message says which
    /// and why.
    Poisoned(String),
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::Disconnected => write!(f, "ring disconnected"),
            RingError::Poisoned(msg) => write!(f, "ring poisoned: {msg}"),
        }
    }
}

impl std::error::Error for RingError {}

/// Outcome of a non-blocking [`Producer::try_push`].
#[derive(Debug)]
pub enum TryPush<T> {
    /// The item was queued.
    Pushed,
    /// The ring is at capacity; the item comes back.
    Full(T),
    /// The ring can never accept the item; it comes back with the cause.
    Closed(T, RingError),
}

/// Outcome of a non-blocking [`Consumer::try_pop`].
#[derive(Debug)]
pub enum TryPop<T> {
    /// The oldest queued item.
    Item(T),
    /// Nothing buffered right now, but the producer is still live.
    Empty,
    /// The producer finished and the ring is drained.
    Finished,
}

struct RingState<T> {
    /// Fixed-capacity circular storage; `None` marks an empty slot.
    slots: Vec<Option<T>>,
    /// Index of the oldest item.
    head: usize,
    /// Items currently queued.
    len: usize,
    producer_done: bool,
    consumer_gone: bool,
    poisoned: Option<String>,
    /// High-water mark of `len`, for backpressure diagnostics.
    max_depth: usize,
}

struct Shared<T> {
    state: Mutex<RingState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

/// Creates a bounded SPSC ring holding at most `capacity` items
/// (clamped to ≥ 1). Returns the two endpoints; each is `Send` and owns
/// its side of the protocol.
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let capacity = capacity.max(1);
    let shared = Arc::new(Shared {
        state: Mutex::new(RingState {
            slots: (0..capacity).map(|_| None).collect(),
            head: 0,
            len: 0,
            producer_done: false,
            consumer_gone: false,
            poisoned: None,
            max_depth: 0,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
        },
        Consumer { shared },
    )
}

/// The sending endpoint of a [`ring`].
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving endpoint of a [`ring`].
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

/// A passive observer of one ring's depth statistics; keeps the state
/// alive after both endpoints drop so post-run diagnostics can read the
/// high-water mark.
pub struct DepthProbe<T> {
    shared: Arc<Shared<T>>,
}

impl<T> DepthProbe<T> {
    /// The deepest the ring ever got.
    pub fn max_depth(&self) -> usize {
        self.shared.state.lock().expect("ring lock").max_depth
    }
}

impl<T> Producer<T> {
    /// Queues `item`, blocking while the ring is full. Fails — returning
    /// immediately, never blocking forever — once the consumer is gone
    /// or the ring is poisoned.
    pub fn push(&self, item: T) -> Result<(), RingError> {
        let mut state = self.shared.state.lock().expect("ring lock");
        loop {
            if let Some(msg) = &state.poisoned {
                return Err(RingError::Poisoned(msg.clone()));
            }
            if state.consumer_gone {
                return Err(RingError::Disconnected);
            }
            if state.len < state.slots.len() {
                break;
            }
            state = self.shared.not_full.wait(state).expect("ring lock");
        }
        let cap = state.slots.len();
        let tail = (state.head + state.len) % cap;
        debug_assert!(state.slots[tail].is_none(), "occupied tail slot");
        state.slots[tail] = Some(item);
        state.len += 1;
        state.max_depth = state.max_depth.max(state.len);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking [`Producer::push`].
    pub fn try_push(&self, item: T) -> TryPush<T> {
        let mut state = self.shared.state.lock().expect("ring lock");
        if let Some(msg) = &state.poisoned {
            return TryPush::Closed(item, RingError::Poisoned(msg.clone()));
        }
        if state.consumer_gone {
            return TryPush::Closed(item, RingError::Disconnected);
        }
        if state.len == state.slots.len() {
            return TryPush::Full(item);
        }
        let cap = state.slots.len();
        let tail = (state.head + state.len) % cap;
        state.slots[tail] = Some(item);
        state.len += 1;
        state.max_depth = state.max_depth.max(state.len);
        drop(state);
        self.shared.not_empty.notify_one();
        TryPush::Pushed
    }

    /// Ends the stream: the consumer drains the buffered items and then
    /// sees `Ok(None)`. Dropping the producer does the same.
    pub fn finish(&self) {
        let mut state = self.shared.state.lock().expect("ring lock");
        state.producer_done = true;
        drop(state);
        self.shared.not_empty.notify_all();
    }

    /// Marks the ring failed: both endpoints see
    /// [`RingError::Poisoned`] with `message` from now on. Used by a
    /// panicking stage to carry its panic message to the sink.
    pub fn poison(&self, message: impl Into<String>) {
        let mut state = self.shared.state.lock().expect("ring lock");
        if state.poisoned.is_none() {
            state.poisoned = Some(message.into());
        }
        drop(state);
        self.shared.not_full.notify_all();
        self.shared.not_empty.notify_all();
    }

    /// A depth observer for this ring.
    pub fn probe(&self) -> DepthProbe<T> {
        DepthProbe {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.finish();
    }
}

impl<T> Consumer<T> {
    /// The next item, blocking while the ring is empty and the producer
    /// live. `Ok(None)` once the producer finished and the ring drained;
    /// `Err` if the ring was poisoned.
    pub fn pop(&self) -> Result<Option<T>, RingError> {
        let mut state = self.shared.state.lock().expect("ring lock");
        loop {
            if let Some(msg) = &state.poisoned {
                return Err(RingError::Poisoned(msg.clone()));
            }
            if state.len > 0 {
                break;
            }
            if state.producer_done {
                return Ok(None);
            }
            state = self.shared.not_empty.wait(state).expect("ring lock");
        }
        let head = state.head;
        let item = state.slots[head].take().expect("len > 0");
        state.head = (head + 1) % state.slots.len();
        state.len -= 1;
        drop(state);
        self.shared.not_full.notify_one();
        Ok(Some(item))
    }

    /// Non-blocking [`Consumer::pop`].
    pub fn try_pop(&self) -> Result<TryPop<T>, RingError> {
        let mut state = self.shared.state.lock().expect("ring lock");
        if let Some(msg) = &state.poisoned {
            return Err(RingError::Poisoned(msg.clone()));
        }
        if state.len == 0 {
            return Ok(if state.producer_done {
                TryPop::Finished
            } else {
                TryPop::Empty
            });
        }
        let head = state.head;
        let item = state.slots[head].take().expect("len > 0");
        state.head = (head + 1) % state.slots.len();
        state.len -= 1;
        drop(state);
        self.shared.not_full.notify_one();
        Ok(TryPop::Item(item))
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.shared.state.lock().expect("ring lock").len
    }

    /// A depth observer for this ring.
    pub fn probe(&self) -> DepthProbe<T> {
        DepthProbe {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("ring lock");
        state.consumer_gone = true;
        drop(state);
        self.shared.not_full.notify_all();
    }
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = ring::<u32>(3);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(rx.pop().unwrap(), Some(1));
        tx.push(3).unwrap();
        tx.push(4).unwrap();
        assert!(matches!(tx.try_push(5), TryPush::Full(5)));
        assert_eq!(rx.pop().unwrap(), Some(2));
        assert_eq!(rx.pop().unwrap(), Some(3));
        assert_eq!(rx.pop().unwrap(), Some(4));
        assert!(matches!(rx.try_pop().unwrap(), TryPop::Empty));
        drop(tx);
        assert_eq!(rx.pop().unwrap(), None);
    }

    #[test]
    fn producer_drop_finishes_consumer_drop_disconnects() {
        let (tx, rx) = ring::<u8>(2);
        tx.push(9).unwrap();
        drop(tx);
        assert_eq!(rx.pop().unwrap(), Some(9));
        assert_eq!(rx.pop().unwrap(), None);

        let (tx, rx) = ring::<u8>(2);
        drop(rx);
        assert_eq!(tx.push(1), Err(RingError::Disconnected));
    }

    #[test]
    fn poison_reaches_both_ends_with_the_message() {
        let (tx, rx) = ring::<u8>(2);
        tx.push(1).unwrap();
        tx.poison("stage exploded");
        assert_eq!(
            rx.pop(),
            Err(RingError::Poisoned("stage exploded".into()))
        );
        assert_eq!(
            tx.push(2),
            Err(RingError::Poisoned("stage exploded".into()))
        );
    }

    #[test]
    fn max_depth_tracks_high_water_mark() {
        let (tx, rx) = ring::<u8>(4);
        let probe = rx.probe();
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        tx.push(3).unwrap();
        rx.pop().unwrap();
        rx.pop().unwrap();
        tx.push(4).unwrap();
        assert_eq!(probe.max_depth(), 3);
        drop(tx);
        drop(rx);
        // The probe outlives both endpoints.
        assert_eq!(probe.max_depth(), 3);
    }
}
