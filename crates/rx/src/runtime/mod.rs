//! The streaming receiver runtime: a pipelined rx flowgraph.
//!
//! [`Receiver::receive`] is a monolithic pass over one whole capture.
//! This module decomposes it into the four stages the paper's §III
//! receive chain already implies —
//!
//! ```text
//! SampleSource ─▶ frame-sync ─▶ user-detect ─▶ decode ─▶ SIC ─▶ sink
//!    (blocks)        ring           ring          ring     ring
//! ```
//!
//! — connected by bounded SPSC [`ring`]s, so stage N of capture *k*
//! overlaps stage N−1 of capture *k+1*. The scheduler is pluggable:
//!
//! * [`Scheduler::Inline`] runs every stage on the caller's thread, one
//!   block at a time — zero threads, zero rings, trivially
//!   deadlock-free; the reference for equivalence tests.
//! * [`Scheduler::ThreadPerStage`] gives each stage its own thread over
//!   the rings; ring capacity bounds in-flight memory (backpressure) and
//!   a panicking stage poisons the graph so [`RxFlowgraph::run`] returns
//!   a clean error instead of hanging.
//! * [`Scheduler::WorkStealing`] multiplexes *all* streams' stage
//!   activations over a fixed worker pool (local deques, LIFO pop, FIFO
//!   steal, park/unpark idle protocol, optional CPU pinning) — the
//!   serve-many-streams scheduler; see [`worksteal`].
//!
//! **Decision identity.** Both schedulers, at every block size, produce
//! reports *decision-identical* to [`Receiver::receive`] — same detected
//! users, decoded payload bytes, SIC recoveries, collisions and silence
//! calls. The per-stage seams are the receiver's own code paths
//! (`sync_capture`'s window math, the `Auto` detection path, the shared
//! decode/alias/probe phases, `apply_sic`), fed block-by-block through
//! carry-over state proven bit-identical to whole-buffer processing:
//! [`cbma_dsp::xcorr::RunningEnergy::extend`] for frame sync and
//! [`cbma_dsp::BatchStream`] for the overlap-save correlator tails. The
//! block-boundary equivalence suite
//! (`crates/rx/tests/streaming_equivalence.rs`) pins this for block
//! sizes 1, prime, power-of-two and whole-capture on both schedulers.
//!
//! Results leave through the same in-order emission
//! ([`crate::stream_pool::InOrderEmitter`]) the worker pool uses: per
//! stream, in capture order, regardless of internal pipelining.

pub mod affinity;
pub mod ring;
pub mod source;
pub mod worksteal;

pub use ring::{ring, Consumer, DepthProbe, Producer, RingError, RingWaker, TryPop, TryPush};
pub use source::{CaptureSource, SampleSource, SourceBlock};
pub use worksteal::MultiStreamFlowgraph;

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use cbma_codes::PnCode;
use cbma_obs::trace::{SpanId, TraceId, Tracer};
use cbma_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use cbma_tag::phy::PhyProfile;
use cbma_types::Iq;

use crate::frame_sync::SyncStream;
use crate::receiver::{Receiver, ReceiverConfig, RxReport, RxTelemetry, SyncOutcome, TraceCtx};
use crate::stream_pool::{InOrderEmitter, StreamResult};
use crate::user_detect::DetectedUser;

/// How the flowgraph maps stages onto threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// All stages on the caller's thread, block by block; no rings.
    Inline,
    /// One thread per stage (plus the source), connected by bounded
    /// rings; captures pipeline through the stages.
    ThreadPerStage,
    /// A fixed pool of `workers` threads running every stream's stage
    /// activations as stealable tasks (see [`worksteal`]). `workers = 0`
    /// means one per available CPU; `pin` round-robins workers onto
    /// CPUs via [`affinity`].
    WorkStealing {
        /// Pool size (0 = auto: one worker per available CPU).
        workers: usize,
        /// Round-robin CPU affinity for the workers.
        pin: bool,
    },
}

impl Scheduler {
    /// The scheduler names [`Scheduler::parse`] accepts, for CLI errors.
    pub const VALID_NAMES: &'static str = "inline, threaded, worksteal[:N][:pin]";

    /// A short stable kind name (for test labels and span args).
    pub fn as_str(&self) -> &'static str {
        match self {
            Scheduler::Inline => "inline",
            Scheduler::ThreadPerStage => "thread-per-stage",
            Scheduler::WorkStealing { .. } => "worksteal",
        }
    }

    /// The full round-trippable CLI name (`parse(name()) == self`):
    /// `inline`, `threaded`, `worksteal`, `worksteal:4`, `worksteal:pin`,
    /// `worksteal:4:pin`.
    pub fn name(&self) -> String {
        match self {
            Scheduler::Inline => "inline".into(),
            Scheduler::ThreadPerStage => "threaded".into(),
            Scheduler::WorkStealing { workers, pin } => {
                let mut name = String::from("worksteal");
                if *workers > 0 {
                    name.push_str(&format!(":{workers}"));
                }
                if *pin {
                    name.push_str(":pin");
                }
                name
            }
        }
    }

    /// Parses a CLI scheduler name; `None` for anything not listed in
    /// [`Scheduler::VALID_NAMES`].
    pub fn parse(name: &str) -> Option<Scheduler> {
        match name {
            "inline" => return Some(Scheduler::Inline),
            "threaded" | "thread-per-stage" => return Some(Scheduler::ThreadPerStage),
            _ => {}
        }
        let rest = name.strip_prefix("worksteal")?;
        let (workers, pin) = match rest {
            "" => (0, false),
            ":pin" => (0, true),
            _ => {
                let spec = rest.strip_prefix(':')?;
                let (count, pin) = match spec.strip_suffix(":pin") {
                    Some(count) => (count, true),
                    None => (spec, false),
                };
                (count.parse::<usize>().ok()?, pin)
            }
        };
        Some(Scheduler::WorkStealing { workers, pin })
    }

    /// Resolves a `workers` request: 0 (auto) becomes one worker per
    /// available CPU, anything else is clamped to ≥ 1.
    pub fn effective_workers(workers: usize) -> usize {
        if workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            workers
        }
    }
}

/// Tunable runtime parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Samples per source block (clamped to ≥ 1). Any value yields
    /// identical decisions; it only moves the latency/overhead
    /// trade-off.
    pub block_size: usize,
    /// Capacity of each inter-stage ring (clamped to ≥ 1). Total
    /// in-flight captures are bounded by roughly 4·capacity + 4.
    pub ring_capacity: usize,
    /// Stage-to-thread mapping.
    pub scheduler: Scheduler,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            block_size: 4096,
            ring_capacity: 4,
            scheduler: Scheduler::ThreadPerStage,
        }
    }
}

/// The pipeline stages, for fault injection and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Frame synchronization (energy edges, per block).
    Sync,
    /// User detection (preamble correlation, per capture).
    Detect,
    /// Candidate decode / alias resolution / probe fallback.
    Decode,
    /// Successive interference cancellation.
    Sic,
}

impl StageKind {
    /// The stage's short name as it appears in span labels and errors.
    pub fn name(&self) -> &'static str {
        match self {
            StageKind::Sync => "sync",
            StageKind::Detect => "detect",
            StageKind::Decode => "decode",
            StageKind::Sic => "sic",
        }
    }
}

/// Deterministic fault injection for the runtime's failure-path tests.
#[derive(Debug, Clone, Copy, Default)]
struct FaultPlan {
    /// Panic inside the given stage when it completes the capture with
    /// this seq.
    panic_at: Option<(StageKind, u64)>,
}

impl FaultPlan {
    #[inline]
    fn trip(&self, stage: StageKind, seq: u64) {
        if self.panic_at == Some((stage, seq)) {
            panic!("injected fault: {} stage at capture {seq}", stage.name());
        }
    }
}

/// The flowgraph failed: a stage panicked (or the pipeline was torn
/// down); the message names the stage and cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowgraphError {
    /// Human-readable failure description.
    pub message: String,
}

impl std::fmt::Display for FlowgraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flowgraph failed: {}", self.message)
    }
}

impl std::error::Error for FlowgraphError {}

/// Counters and ring diagnostics from one [`RxFlowgraph::run`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Source blocks consumed.
    pub blocks: u64,
    /// Captures completed through the whole pipeline.
    pub captures: u64,
    /// High-water depth per ring, in pipeline order (source→sync,
    /// sync→detect, detect→decode, decode→sic, sic→sink). Empty on the
    /// inline scheduler, which has no rings. On the work-stealing
    /// scheduler each entry is the max across streams at that position.
    pub ring_max_depth: Vec<usize>,
    /// Work-stealing pool: tasks taken from another queue (a victim's
    /// deque or the injector). Zero on the other schedulers.
    pub steals: u64,
    /// Work-stealing pool: tasks popped from the worker's own deque.
    pub local_hits: u64,
    /// Work-stealing pool: times a worker parked for lack of work.
    pub parks: u64,
    /// Work-stealing pool: total nanoseconds workers spent parked.
    pub park_ns: u64,
    /// Work-stealing pool: total nanoseconds workers spent running
    /// stage bodies (utilization = busy_ns / (workers · wall time)).
    pub busy_ns: u64,
}

/// Results plus stats from one [`RxFlowgraph::run`].
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Every capture's report, per stream in capture order.
    pub results: Vec<StreamResult>,
    /// Runtime diagnostics.
    pub stats: RunStats,
}

/// Registered metric handles for the runtime (see
/// [`RxFlowgraph::attach_metrics`]).
#[derive(Clone)]
struct RuntimeMetrics {
    stage_run_ns: Histogram,
    stage_wait_ns: Histogram,
    blocks: Counter,
    captures: Counter,
    ring_depth: Gauge,
    steal_count: Counter,
    local_hit: Counter,
    worker_park_ns: Histogram,
    pool_utilization: Gauge,
}

impl RuntimeMetrics {
    fn register(registry: &MetricsRegistry) -> RuntimeMetrics {
        RuntimeMetrics {
            stage_run_ns: registry.histogram("cbma.rx.runtime.stage_run_ns"),
            stage_wait_ns: registry.histogram("cbma.rx.runtime.stage_wait_ns"),
            blocks: registry.counter("cbma.rx.runtime.blocks"),
            captures: registry.counter("cbma.rx.runtime.captures"),
            ring_depth: registry.gauge("cbma.rx.runtime.ring_depth"),
            steal_count: registry.counter("cbma.rx.runtime.worker.steal_count"),
            local_hit: registry.counter("cbma.rx.runtime.worker.local_hit"),
            worker_park_ns: registry.histogram("cbma.rx.runtime.worker.park_ns"),
            pool_utilization: registry.gauge("cbma.rx.runtime.pool_utilization"),
        }
    }
}

/// Per-stage observability: span context plus timer handles. Cheap to
/// build per run; all fields are `Arc`-backed clones.
#[derive(Clone, Default)]
struct StageObs {
    ctx: Option<(Tracer, TraceId, SpanId)>,
    run_ns: Option<Histogram>,
    wait_ns: Option<Histogram>,
}

impl StageObs {
    /// Times `f` as a `stage_run` span (arg = capture seq) and histogram
    /// sample.
    fn run<T>(&self, seq: u64, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let mut span = self
            .ctx
            .as_ref()
            .map(|(t, tr, parent)| t.span(*tr, Some(*parent), "stage_run"));
        if let Some(span) = span.as_mut() {
            span.set_arg(seq);
        }
        let out = f();
        drop(span);
        if let Some(h) = &self.run_ns {
            h.record_duration(start.elapsed());
        }
        out
    }

    /// Times `f` (a blocking ring pop) as a `stage_wait` span and
    /// histogram sample.
    fn wait<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let span = self
            .ctx
            .as_ref()
            .map(|(t, tr, parent)| t.span(*tr, Some(*parent), "stage_wait"));
        let out = f();
        drop(span);
        if let Some(h) = &self.wait_ns {
            h.record_duration(start.elapsed());
        }
        out
    }
}

/// A capture that finished frame synchronization.
struct SyncedCapture {
    stream: usize,
    seq: u64,
    samples: Vec<Iq>,
    outcome: SyncOutcome,
    telemetry: RxTelemetry,
}

/// A synced capture with its per-code detection candidates.
struct DetectedCapture {
    stream: usize,
    seq: u64,
    samples: Vec<Iq>,
    outcome: SyncOutcome,
    telemetry: RxTelemetry,
    candidates: Vec<Vec<DetectedUser>>,
}

/// A decoded capture awaiting SIC.
struct DecodedCapture {
    stream: usize,
    seq: u64,
    samples: Vec<Iq>,
    report: RxReport,
}

/// In-progress per-capture frame-sync state.
struct InflightSync {
    stream: SyncStream,
    samples: Vec<Iq>,
    sync_ns: u64,
}

impl InflightSync {
    /// Opens frame-sync accumulation for one capture.
    fn begin(receiver: &Receiver) -> InflightSync {
        InflightSync {
            stream: receiver.frame_sync().stream(),
            samples: Vec::new(),
            sync_ns: 0,
        }
    }

    /// Feeds one block through the streaming comparator while
    /// accumulating the capture.
    fn absorb(&mut self, samples: &[Iq]) {
        let start = Instant::now();
        self.stream.push_block(samples);
        self.samples.extend_from_slice(samples);
        self.sync_ns += start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    }

    /// Closes the capture: the global edge decision and window math,
    /// exactly as the monolithic path computes them.
    fn complete(self, receiver: &Receiver, stream: usize, seq: u64) -> SyncedCapture {
        let start = Instant::now();
        let edge = self.stream.finish(receiver.frame_sync());
        let outcome = receiver.outcome_for_edge(edge, self.samples.len());
        let telemetry = RxTelemetry {
            frame_sync_ns: self.sync_ns + start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            ..RxTelemetry::default()
        };
        SyncedCapture {
            stream,
            seq,
            samples: self.samples,
            outcome,
            telemetry,
        }
    }
}

/// Stage 1's body for a single-stream chain (the work-stealing layout,
/// where blocks of one stream arrive strictly in order so one in-flight
/// capture suffices): absorbs `block`, returning the synced capture once
/// its last block lands.
fn sync_block(
    receiver: &Receiver,
    carry: &mut Option<InflightSync>,
    block: SourceBlock,
    fault: &FaultPlan,
) -> Option<SyncedCapture> {
    let inflight = carry.get_or_insert_with(|| InflightSync::begin(receiver));
    inflight.absorb(&block.samples);
    if !block.last {
        return None;
    }
    fault.trip(StageKind::Sync, block.seq);
    let inflight = carry.take().expect("just inserted");
    Some(inflight.complete(receiver, block.stream, block.seq))
}

/// Stage 2's body: user detection over the synced search window, fed to
/// the overlap-save engine block by block.
fn detect_capture(
    receiver: &mut Receiver,
    block_size: usize,
    mut cap: SyncedCapture,
    fault: &FaultPlan,
) -> DetectedCapture {
    fault.trip(StageKind::Detect, cap.seq);
    let mut candidates = Vec::new();
    if let SyncOutcome::Window(start, end) = cap.outcome {
        receiver.detect_window_streamed(
            &cap.samples,
            start,
            end,
            block_size,
            &mut cap.telemetry,
            None,
        );
        candidates = std::mem::take(receiver.candidates_mut());
    }
    DetectedCapture {
        stream: cap.stream,
        seq: cap.seq,
        samples: cap.samples,
        outcome: cap.outcome,
        telemetry: cap.telemetry,
        candidates,
    }
}

/// Stage 3's body: candidate decode, global alias resolution and the
/// probe fallback — the monolithic pipeline's decode phases, unchanged.
fn decode_capture(
    receiver: &mut Receiver,
    cap: DetectedCapture,
    fault: &FaultPlan,
) -> DecodedCapture {
    fault.trip(StageKind::Decode, cap.seq);
    if matches!(cap.outcome, SyncOutcome::Window(..)) {
        receiver.stage_candidates(&cap.candidates);
    }
    let report = receiver.finish_outcome(&cap.samples, cap.outcome, cap.telemetry, None);
    DecodedCapture {
        stream: cap.stream,
        seq: cap.seq,
        samples: cap.samples,
        report,
    }
}

/// Stage 4's body: successive interference cancellation. Runs on *every*
/// report (like the monolithic path — `apply_sic` itself is a no-op when
/// SIC is disabled), so telemetry like `sic_iterations` matches exactly.
fn sic_capture(receiver: &mut Receiver, mut cap: DecodedCapture, fault: &FaultPlan) -> StreamResult {
    fault.trip(StageKind::Sic, cap.seq);
    let trace: TraceCtx = None;
    receiver.apply_sic(&cap.samples, &mut cap.report, trace);
    StreamResult {
        stream: cap.stream,
        seq: cap.seq,
        report: cap.report,
    }
}

/// Stage 1: incremental frame synchronization. The only stage that works
/// per *block*; it accumulates the capture while running the per-sample
/// energy comparator and prefix sums, and decides (globally, exactly as
/// the monolithic path does) when the capture's last block arrives.
/// Keyed by `(stream, seq)` because blocks of different streams may
/// interleave through the single pipeline.
struct SyncStage {
    receiver: Receiver,
    inflight: HashMap<(usize, u64), InflightSync>,
}

impl SyncStage {
    fn on_block(&mut self, block: SourceBlock, fault: &FaultPlan) -> Option<SyncedCapture> {
        let key = (block.stream, block.seq);
        let entry = self
            .inflight
            .entry(key)
            .or_insert_with(|| InflightSync::begin(&self.receiver));
        entry.absorb(&block.samples);
        if !block.last {
            return None;
        }
        fault.trip(StageKind::Sync, block.seq);
        let inflight = self.inflight.remove(&key).expect("just inserted");
        Some(inflight.complete(&self.receiver, block.stream, block.seq))
    }
}

/// Stage 2: user detection (see [`detect_capture`]).
struct DetectStage {
    receiver: Receiver,
    block_size: usize,
}

impl DetectStage {
    fn on_capture(&mut self, cap: SyncedCapture, fault: &FaultPlan) -> DetectedCapture {
        detect_capture(&mut self.receiver, self.block_size, cap, fault)
    }
}

/// Stage 3: decode (see [`decode_capture`]).
struct DecodeStage {
    receiver: Receiver,
}

impl DecodeStage {
    fn on_capture(&mut self, cap: DetectedCapture, fault: &FaultPlan) -> DecodedCapture {
        decode_capture(&mut self.receiver, cap, fault)
    }
}

/// Stage 4: SIC (see [`sic_capture`]).
struct SicStage {
    receiver: Receiver,
}

impl SicStage {
    fn on_capture(&mut self, cap: DecodedCapture, fault: &FaultPlan) -> StreamResult {
        sic_capture(&mut self.receiver, cap, fault)
    }
}

/// The pipelined streaming receiver (see the module docs).
///
/// # Examples
///
/// ```
/// use cbma_codes::{CodeFamily, GoldFamily};
/// use cbma_rx::runtime::{CaptureSource, RuntimeConfig, RxFlowgraph, Scheduler};
/// use cbma_rx::ReceiverConfig;
/// use cbma_tag::phy::PhyProfile;
/// use cbma_types::Iq;
///
/// let codes = GoldFamily::new(5)?.codes(2)?;
/// let mut flow = RxFlowgraph::new(
///     codes,
///     PhyProfile::paper_default(),
///     ReceiverConfig::default(),
///     RuntimeConfig { block_size: 512, ring_capacity: 2, scheduler: Scheduler::ThreadPerStage },
/// );
/// let source = CaptureSource::single_stream(512, vec![vec![Iq::ZERO; 2000]]);
/// let out = flow.run(source).expect("no stage fails");
/// assert_eq!(out.results.len(), 1);
/// assert!(!out.results[0].report.frame_detected);
/// # Ok::<(), cbma_types::CbmaError>(())
/// ```
pub struct RxFlowgraph {
    sync: SyncStage,
    detect: DetectStage,
    decode: DecodeStage,
    sic: SicStage,
    /// Worker-local receivers for the work-stealing pool, grown on
    /// demand and reused across runs. Each worker thread borrows one:
    /// the stage seams are per-capture stateless (scratch arenas are
    /// cleared per use), so which receiver runs a capture's stage never
    /// changes a decision.
    pool_receivers: Vec<Receiver>,
    codes: Vec<PnCode>,
    phy: PhyProfile,
    config: ReceiverConfig,
    runtime: RuntimeConfig,
    tracer: Option<Tracer>,
    metrics: Option<RuntimeMetrics>,
    fault: FaultPlan,
}

impl RxFlowgraph {
    /// Builds the flowgraph: one [`Receiver`] per stage (each stage
    /// thread owns a private scratch arena — no locking on the hot
    /// path), sharing the code set.
    ///
    /// # Panics
    ///
    /// Panics on invalid receiver parameters (see [`Receiver::new`]).
    pub fn new(
        codes: Vec<PnCode>,
        phy: PhyProfile,
        config: ReceiverConfig,
        runtime: RuntimeConfig,
    ) -> RxFlowgraph {
        let block_size = runtime.block_size.max(1);
        RxFlowgraph {
            sync: SyncStage {
                receiver: Receiver::new(codes.clone(), phy, config),
                inflight: HashMap::new(),
            },
            detect: DetectStage {
                receiver: Receiver::new(codes.clone(), phy, config),
                block_size,
            },
            decode: DecodeStage {
                receiver: Receiver::new(codes.clone(), phy, config),
            },
            sic: SicStage {
                receiver: Receiver::new(codes.clone(), phy, config),
            },
            pool_receivers: Vec::new(),
            codes,
            phy,
            config,
            runtime,
            tracer: None,
            metrics: None,
            fault: FaultPlan::default(),
        }
    }

    /// Attaches a span tracer: each run records a `flowgraph` root with
    /// per-stage `sync_stage` / `detect_stage` / `decode_stage` /
    /// `sic_stage` children, under which every capture contributes
    /// `stage_wait` (ring pop) and `stage_run` (arg = capture seq)
    /// spans.
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = Some(tracer.clone());
    }

    /// Attaches a metrics registry: runs record `cbma.rx.runtime.*`
    /// stage timers, block/capture counters and the ring high-water
    /// gauge. These are volatile (scheduling-dependent) — keep them off
    /// registries that feed deterministic manifests.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(RuntimeMetrics::register(registry));
    }

    /// The runtime configuration the flowgraph was built with.
    #[inline]
    pub fn runtime_config(&self) -> RuntimeConfig {
        self.runtime
    }

    /// Arms a one-shot injected panic in `stage` at capture `seq` (test
    /// hook for the failure-path suite).
    #[doc(hidden)]
    pub fn inject_panic(&mut self, stage: StageKind, seq: u64) {
        self.fault.panic_at = Some((stage, seq));
    }

    /// Runs `source` to exhaustion and returns every capture's report,
    /// per stream in capture order, plus run stats.
    ///
    /// # Errors
    ///
    /// [`FlowgraphError`] if a stage panicked (thread-per-stage
    /// scheduler): the pipeline is poisoned, drained and joined — never
    /// left hanging. On the inline scheduler a stage panic propagates to
    /// the caller directly.
    pub fn run<S: SampleSource + Send>(&mut self, source: S) -> Result<RunOutput, FlowgraphError> {
        let mut results = Vec::new();
        let stats = self.run_with_sink(source, |r| results.push(r))?;
        Ok(RunOutput { results, stats })
    }

    /// Like [`RxFlowgraph::run`], but hands each in-order result to
    /// `sink` as soon as it is available — the backpressure boundary: a
    /// slow sink throttles the whole pipeline back to the source instead
    /// of queueing unboundedly.
    pub fn run_with_sink<S: SampleSource + Send>(
        &mut self,
        source: S,
        sink: impl FnMut(StreamResult),
    ) -> Result<RunStats, FlowgraphError> {
        // Faults are one-shot: taking the plan here means a run that
        // failed (by injection) leaves the flowgraph reusable.
        let fault = std::mem::take(&mut self.fault);
        match self.runtime.scheduler {
            Scheduler::Inline => self.run_inline(source, sink, fault),
            Scheduler::ThreadPerStage => self.run_threaded(source, sink, fault),
            Scheduler::WorkStealing { workers, pin } => {
                self.run_worksteal(source, sink, fault, workers, pin)
            }
        }
    }

    /// Builds the per-stage observability contexts (and the guards whose
    /// lifetime scopes the run).
    fn stage_obs(&self) -> (Option<cbma_obs::trace::SpanGuard>, Vec<StageObs>, [Option<cbma_obs::trace::SpanGuard>; 4]) {
        let ctx = self.tracer.as_ref().map(|t| (t.clone(), t.new_trace()));
        let root = ctx.as_ref().map(|(t, tr)| t.span(*tr, None, "flowgraph"));
        let root_id = root.as_ref().map(|s| s.id());
        let names = ["sync_stage", "detect_stage", "decode_stage", "sic_stage"];
        let mut guards: [Option<cbma_obs::trace::SpanGuard>; 4] = [None, None, None, None];
        let mut obs = Vec::with_capacity(4);
        for (i, name) in names.into_iter().enumerate() {
            guards[i] = ctx.as_ref().map(|(t, tr)| t.span(*tr, root_id, name));
            obs.push(StageObs {
                ctx: ctx
                    .as_ref()
                    .zip(guards[i].as_ref())
                    .map(|((t, tr), g)| (t.clone(), *tr, g.id())),
                run_ns: self.metrics.as_ref().map(|m| m.stage_run_ns.clone()),
                wait_ns: self.metrics.as_ref().map(|m| m.stage_wait_ns.clone()),
            });
        }
        (root, obs, guards)
    }

    /// Records end-of-run totals into the attached metrics.
    fn record_stats(&self, stats: &RunStats) {
        if let Some(metrics) = &self.metrics {
            metrics.blocks.add(stats.blocks);
            metrics.captures.add(stats.captures);
            for &depth in &stats.ring_max_depth {
                metrics.ring_depth.max(depth as f64);
            }
            metrics.steal_count.add(stats.steals);
            metrics.local_hit.add(stats.local_hits);
        }
    }

    fn run_inline<S: SampleSource>(
        &mut self,
        mut source: S,
        mut sink: impl FnMut(StreamResult),
        fault: FaultPlan,
    ) -> Result<RunStats, FlowgraphError> {
        let (_root, obs, _guards) = self.stage_obs();
        let mut stats = RunStats::default();
        let mut emitter = InOrderEmitter::new();
        while let Some(block) = source.next_block() {
            stats.blocks += 1;
            let seq = block.seq;
            let synced = obs[0].run(seq, || self.sync.on_block(block, &fault));
            if let Some(cap) = synced {
                let det = obs[1].run(seq, || self.detect.on_capture(cap, &fault));
                let dec = obs[2].run(seq, || self.decode.on_capture(det, &fault));
                let res = obs[3].run(seq, || self.sic.on_capture(dec, &fault));
                stats.captures += 1;
                emitter.insert(res.stream, res.seq, res.report);
                for r in emitter.take_ready() {
                    sink(r);
                }
            }
        }
        self.record_stats(&stats);
        Ok(stats)
    }

    fn run_worksteal<S: SampleSource + Send>(
        &mut self,
        source: S,
        sink: impl FnMut(StreamResult),
        fault: FaultPlan,
        workers: usize,
        pin: bool,
    ) -> Result<RunStats, FlowgraphError> {
        let workers = Scheduler::effective_workers(workers);
        while self.pool_receivers.len() < workers {
            self.pool_receivers
                .push(Receiver::new(self.codes.clone(), self.phy, self.config));
        }
        let (stats, failure) = worksteal::run(
            worksteal::PoolParams {
                receivers: &mut self.pool_receivers[..workers],
                block_size: self.runtime.block_size.max(1),
                ring_capacity: self.runtime.ring_capacity.max(1),
                pin,
                tracer: self.tracer.as_ref(),
                metrics: self.metrics.as_ref(),
                fault,
            },
            source,
            sink,
        );
        self.record_stats(&stats);
        match failure {
            Some(err) => Err(err),
            None => Ok(stats),
        }
    }

    fn run_threaded<S: SampleSource + Send>(
        &mut self,
        mut source: S,
        mut sink: impl FnMut(StreamResult),
        fault: FaultPlan,
    ) -> Result<RunStats, FlowgraphError> {
        let cap = self.runtime.ring_capacity.max(1);
        let (_root, obs, _guards) = self.stage_obs();

        let (blk_tx, blk_rx) = ring::<SourceBlock>(cap);
        let (syn_tx, syn_rx) = ring::<SyncedCapture>(cap);
        let (det_tx, det_rx) = ring::<DetectedCapture>(cap);
        let (dec_tx, dec_rx) = ring::<DecodedCapture>(cap);
        let (res_tx, res_rx) = ring::<StreamResult>(cap);
        let probes = (
            blk_rx.probe(),
            syn_rx.probe(),
            det_rx.probe(),
            dec_rx.probe(),
            res_rx.probe(),
        );

        let sync = &mut self.sync;
        let detect = &mut self.detect;
        let decode = &mut self.decode;
        let sic = &mut self.sic;

        let mut stats = RunStats::default();
        let mut failure: Option<FlowgraphError> = None;

        std::thread::scope(|scope| {
            let source_handle = scope.spawn(move || {
                let r = catch_unwind(AssertUnwindSafe(|| {
                    while let Some(block) = source.next_block() {
                        if blk_tx.push(block).is_err() {
                            break;
                        }
                    }
                }));
                if let Err(payload) = r {
                    blk_tx.poison(format!("source panicked: {}", panic_message(payload)));
                }
            });

            let sync_obs = obs[0].clone();
            let sync_handle = scope.spawn(move || {
                let mut blocks = 0u64;
                let r = catch_unwind(AssertUnwindSafe(|| -> Result<(), RingError> {
                    loop {
                        match sync_obs.wait(|| blk_rx.pop())? {
                            None => return Ok(()),
                            Some(block) => {
                                blocks += 1;
                                let seq = block.seq;
                                if let Some(cap) =
                                    sync_obs.run(seq, || sync.on_block(block, &fault))
                                {
                                    syn_tx.push(cap)?;
                                }
                            }
                        }
                    }
                }));
                settle_stage("sync", r, &syn_tx);
                blocks
            });

            let detect_obs = obs[1].clone();
            scope.spawn(move || {
                let r = catch_unwind(AssertUnwindSafe(|| -> Result<(), RingError> {
                    loop {
                        match detect_obs.wait(|| syn_rx.pop())? {
                            None => return Ok(()),
                            Some(cap) => {
                                let out =
                                    detect_obs.run(cap.seq, || detect.on_capture(cap, &fault));
                                det_tx.push(out)?;
                            }
                        }
                    }
                }));
                settle_stage("detect", r, &det_tx);
            });

            let decode_obs = obs[2].clone();
            scope.spawn(move || {
                let r = catch_unwind(AssertUnwindSafe(|| -> Result<(), RingError> {
                    loop {
                        match decode_obs.wait(|| det_rx.pop())? {
                            None => return Ok(()),
                            Some(cap) => {
                                let out =
                                    decode_obs.run(cap.seq, || decode.on_capture(cap, &fault));
                                dec_tx.push(out)?;
                            }
                        }
                    }
                }));
                settle_stage("decode", r, &dec_tx);
            });

            let sic_obs = obs[3].clone();
            scope.spawn(move || {
                let r = catch_unwind(AssertUnwindSafe(|| -> Result<(), RingError> {
                    loop {
                        match sic_obs.wait(|| dec_rx.pop())? {
                            None => return Ok(()),
                            Some(cap) => {
                                let out = sic_obs.run(cap.seq, || sic.on_capture(cap, &fault));
                                res_tx.push(out)?;
                            }
                        }
                    }
                }));
                settle_stage("sic", r, &res_tx);
            });

            // The caller's thread is the sink: pop in completion order,
            // emit in (stream, seq) order.
            let res_rx = res_rx;
            let mut emitter = InOrderEmitter::new();
            loop {
                match res_rx.pop() {
                    Ok(Some(r)) => {
                        stats.captures += 1;
                        emitter.insert(r.stream, r.seq, r.report);
                        for r in emitter.take_ready() {
                            sink(r);
                        }
                    }
                    Ok(None) => break,
                    Err(RingError::Poisoned(message)) => {
                        failure = Some(FlowgraphError { message });
                        break;
                    }
                    Err(RingError::Disconnected) => {
                        failure = Some(FlowgraphError {
                            message: "pipeline disconnected".into(),
                        });
                        break;
                    }
                }
            }
            // Dropping the sink ring unblocks a poisoned pipeline's
            // upstream stages; the scope then joins every thread (no
            // leaks, no hangs) before we return.
            drop(res_rx);
            stats.blocks = sync_handle.join().unwrap_or(0);
            let _ = source_handle.join();
        });

        stats.ring_max_depth = vec![
            probes.0.max_depth(),
            probes.1.max_depth(),
            probes.2.max_depth(),
            probes.3.max_depth(),
            probes.4.max_depth(),
        ];
        self.record_stats(&stats);
        match failure {
            Some(err) => Err(err),
            None => Ok(stats),
        }
    }
}

impl std::fmt::Debug for RxFlowgraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RxFlowgraph")
            .field("runtime", &self.runtime)
            .finish_non_exhaustive()
    }
}

/// Converts a stage body's exit into ring state: clean finishes let the
/// producer's `Drop` end the stream, poisoning (from upstream or a
/// panic) propagates downstream with the original message, and a
/// disconnected downstream just exits (the disconnect cascades via the
/// dropped consumer).
fn settle_stage<T>(
    name: &'static str,
    result: std::thread::Result<Result<(), RingError>>,
    out: &Producer<T>,
) {
    match result {
        Ok(Ok(())) | Ok(Err(RingError::Disconnected)) => {}
        Ok(Err(RingError::Poisoned(message))) => out.poison(message),
        Err(payload) => out.poison(format!(
            "{name} stage panicked: {}",
            panic_message(payload)
        )),
    }
}

/// Best-effort panic payload stringification.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbma_codes::{CodeFamily, GoldFamily};

    fn flowgraph(scheduler: Scheduler) -> RxFlowgraph {
        let codes = GoldFamily::new(5).unwrap().codes(2).unwrap();
        RxFlowgraph::new(
            codes,
            PhyProfile::paper_default(),
            ReceiverConfig::default(),
            RuntimeConfig {
                block_size: 256,
                ring_capacity: 2,
                scheduler,
            },
        )
    }

    #[test]
    fn scheduler_names_round_trip() {
        let all = [
            Scheduler::Inline,
            Scheduler::ThreadPerStage,
            Scheduler::WorkStealing {
                workers: 0,
                pin: false,
            },
            Scheduler::WorkStealing {
                workers: 0,
                pin: true,
            },
            Scheduler::WorkStealing {
                workers: 4,
                pin: false,
            },
            Scheduler::WorkStealing {
                workers: 16,
                pin: true,
            },
        ];
        for s in all {
            assert_eq!(Scheduler::parse(&s.name()), Some(s), "{}", s.name());
        }
        // The legacy long form still parses.
        assert_eq!(
            Scheduler::parse("thread-per-stage"),
            Some(Scheduler::ThreadPerStage)
        );
        for bad in [
            "",
            "coalesced",
            "worksteal:",
            "worksteal:x",
            "worksteal:4:pin:extra",
            "worksteal::pin",
            "worksteal:pin:4",
        ] {
            assert_eq!(Scheduler::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn silence_flows_through_every_scheduler() {
        for scheduler in [
            Scheduler::Inline,
            Scheduler::ThreadPerStage,
            Scheduler::WorkStealing {
                workers: 2,
                pin: false,
            },
        ] {
            let mut flow = flowgraph(scheduler);
            let source =
                CaptureSource::single_stream(256, vec![vec![Iq::ZERO; 1500], Vec::new()]);
            let out = flow.run(source).expect("clean run");
            assert_eq!(out.results.len(), 2, "{scheduler:?}");
            assert_eq!(out.stats.captures, 2);
            assert!(out.results.iter().all(|r| !r.report.frame_detected));
            assert_eq!(
                out.results.iter().map(|r| r.seq).collect::<Vec<_>>(),
                vec![0, 1]
            );
        }
    }

    #[test]
    fn reruns_reuse_the_flowgraph() {
        let mut flow = flowgraph(Scheduler::ThreadPerStage);
        for _ in 0..2 {
            let source = CaptureSource::single_stream(100, vec![vec![Iq::ZERO; 900]]);
            let out = flow.run(source).expect("clean run");
            assert_eq!(out.results.len(), 1);
            assert_eq!(out.stats.blocks, 9);
        }
    }
}
