//! The receiver's acknowledgement broadcast (§III-B).
//!
//! > "The receiver broadcasts the acknowledgement message to the
//! > backscatter tags to indicate the ID of the successfully decoded tags.
//! > … The ACK message is very important for the tag to adapt the power
//! > level."
//!
//! [`AckMessage`] is that broadcast: the set of tag ids whose frames
//! passed CRC in the last reception. The power-control loop in `cbma-mac`
//! consumes it.

use std::collections::BTreeSet;

/// The broadcast acknowledgement listing decoded tag ids.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AckMessage {
    decoded: BTreeSet<u32>,
}

impl AckMessage {
    /// An empty ACK (nothing decoded).
    pub fn new() -> AckMessage {
        AckMessage::default()
    }

    /// Builds the ACK from the decoded tag ids.
    pub fn from_ids<I: IntoIterator<Item = u32>>(ids: I) -> AckMessage {
        AckMessage {
            decoded: ids.into_iter().collect(),
        }
    }

    /// Marks a tag as decoded.
    pub fn insert(&mut self, tag_id: u32) {
        self.decoded.insert(tag_id);
    }

    /// Whether the given tag was decoded.
    pub fn acknowledges(&self, tag_id: u32) -> bool {
        self.decoded.contains(&tag_id)
    }

    /// Number of decoded tags.
    pub fn len(&self) -> usize {
        self.decoded.len()
    }

    /// Whether nothing was decoded.
    pub fn is_empty(&self) -> bool {
        self.decoded.is_empty()
    }

    /// Iterates the decoded ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.decoded.iter().copied()
    }
}

impl std::fmt::Display for AckMessage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ack[")?;
        for (i, id) in self.decoded.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_tags_1_and_3() {
        // §III-B: "the information from tag 1 and tag 3 are correctly
        // decoded, the receiver then sends an ACK message that shows tag 1
        // and 3 are decoded."
        let ack = AckMessage::from_ids([1, 3]);
        assert!(ack.acknowledges(1));
        assert!(ack.acknowledges(3));
        assert!(!ack.acknowledges(2));
        assert_eq!(ack.len(), 2);
        assert_eq!(ack.to_string(), "ack[1,3]");
    }

    #[test]
    fn insert_deduplicates() {
        let mut ack = AckMessage::new();
        assert!(ack.is_empty());
        ack.insert(5);
        ack.insert(5);
        assert_eq!(ack.len(), 1);
    }

    #[test]
    fn iteration_is_sorted() {
        let ack = AckMessage::from_ids([9, 1, 4]);
        let ids: Vec<u32> = ack.iter().collect();
        assert_eq!(ids, vec![1, 4, 9]);
    }
}
