//! Frame synchronization by energy detection (§III-B).
//!
//! Wraps the DSP-level [`EnergyDetector`] into the receiver's first stage:
//! scan the IQ stream, smooth the energy with a window-Wₙ moving average,
//! and report the sample indices where the instantaneous power rises
//! P_th = 3 dB above the smoothed floor — the candidate frame starts handed
//! to user detection.

use cbma_dsp::energy::{EnergyDetector, EnergyEdge};
use cbma_dsp::xcorr::RunningEnergy;
use cbma_types::units::Db;
use cbma_types::Iq;

/// Reusable state for [`FrameSync::best_edge_in`]: the energy detector
/// (whose moving-average buffers are reset, not reallocated, per
/// capture), the edge list, and the window prefix sums. Created by
/// [`FrameSync::scratch`]; one instance per receiver (or per sweep
/// worker) makes steady-state frame sync allocation-free.
#[derive(Debug, Clone)]
pub struct SyncScratch {
    detector: EnergyDetector,
    edges: Vec<EnergyEdge>,
    running: RunningEnergy,
}

impl SyncScratch {
    /// Total heap capacity held by the scratch, in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.edges.capacity() * std::mem::size_of::<EnergyEdge>() + self.running.capacity_bytes()
    }

    /// Address of the prefix-sum storage, for arena-reuse regression
    /// tests.
    #[doc(hidden)]
    pub fn storage_ptr(&self) -> *const f64 {
        self.running.storage_ptr()
    }
}

/// The frame synchronizer.
#[derive(Debug, Clone)]
pub struct FrameSync {
    window: usize,
    threshold: Db,
}

impl FrameSync {
    /// Creates a synchronizer with moving-average window `window` and the
    /// given comparator threshold.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize, threshold: Db) -> FrameSync {
        assert!(window > 0, "window must be non-zero");
        FrameSync { window, threshold }
    }

    /// The paper's configuration: +3 dB over the filtered power level.
    pub fn paper_default(window: usize) -> FrameSync {
        FrameSync::new(window, Db::new(3.0))
    }

    /// The moving-average window size Wₙ.
    #[inline]
    pub fn window(&self) -> usize {
        self.window
    }

    /// The comparator threshold P_th.
    #[inline]
    pub fn threshold(&self) -> Db {
        self.threshold
    }

    /// Creates the reusable scratch [`FrameSync::best_edge_in`] needs,
    /// with the detector configured for this synchronizer's window and
    /// threshold.
    pub fn scratch(&self) -> SyncScratch {
        SyncScratch {
            detector: EnergyDetector::new(self.window, self.threshold),
            edges: Vec::new(),
            running: RunningEnergy::default(),
        }
    }

    /// Scans a buffer and returns every candidate frame-start edge.
    pub fn detect(&self, samples: &[Iq]) -> Vec<EnergyEdge> {
        let mut det = EnergyDetector::new(self.window, self.threshold);
        det.detect(samples)
    }

    /// Returns the first candidate edge, if any.
    pub fn first_edge(&self, samples: &[Iq]) -> Option<EnergyEdge> {
        self.detect(samples).into_iter().next()
    }

    /// Returns the frame-start edge: the *earliest* edge whose post-edge
    /// power is at least 6 dB over its baseline and within 20 dB of the
    /// strongest edge in the buffer.
    ///
    /// The comparator fires the moment the smoothed statistic crosses
    /// +3 dB, so the rise recorded *at* an edge says little about how
    /// strong the burst behind it is. Significance is therefore judged by
    /// the mean power over the window *after* each edge: a real frame
    /// sustains tens of dB over the floor there, a noise fluke does not.
    /// OOK gaps re-arm the detector and spawn edges inside the frame; the
    /// earliest qualified edge is the frame start, and the 20 dB
    /// comparability window keeps a weak tag's frame start qualified when
    /// a stronger tag dominates later.
    pub fn best_edge(&self, samples: &[Iq]) -> Option<EnergyEdge> {
        self.best_edge_in(samples, &mut self.scratch())
    }

    /// Allocation-free variant of [`FrameSync::best_edge`]: the detector
    /// state, edge list and prefix sums come from `scratch` (created by
    /// [`FrameSync::scratch`]) and are reset — not reallocated — per
    /// capture.
    pub fn best_edge_in(&self, samples: &[Iq], scratch: &mut SyncScratch) -> Option<EnergyEdge> {
        scratch.detector.reset();
        scratch.detector.detect_into(samples, &mut scratch.edges);
        if scratch.edges.is_empty() {
            return None;
        }
        // Prefix sums make each edge's post-window mean power an O(1)
        // lookup; post_ratio is evaluated twice per edge below.
        scratch.running.rebuild(samples);
        self.qualify_edges(&scratch.edges, &scratch.running, samples.len())
    }

    /// The edge-qualification rule shared by the whole-capture path and
    /// the streamed [`SyncStream::finish`]: significance is the mean
    /// power over the window *after* each edge relative to its baseline,
    /// the qualification bar scales with the strongest edge (so both
    /// paths see the identical global decision), and the earliest
    /// qualified edge wins.
    fn qualify_edges(
        &self,
        edges: &[EnergyEdge],
        running: &RunningEnergy,
        len: usize,
    ) -> Option<EnergyEdge> {
        let post_ratio = |e: &EnergyEdge| -> f64 {
            let end = (e.index + self.window).min(len);
            if end <= e.index {
                return 0.0;
            }
            let mean = running.power(e.index, end - e.index) / (end - e.index) as f64;
            if e.baseline <= 0.0 {
                // A rise over a perfectly silent floor is maximally
                // significant (synthetic noise-free captures).
                return if mean > 0.0 { f64::INFINITY } else { 0.0 };
            }
            mean / e.baseline
        };
        let max_ratio = edges.iter().map(post_ratio).fold(0.0f64, f64::max);
        let qualify = (max_ratio / 100.0).max(4.0);
        edges.iter().find(|e| post_ratio(e) >= qualify).copied()
    }

    /// Creates an incremental synchronizer for one capture fed
    /// block-by-block (the streaming runtime's frame-sync stage).
    pub fn stream(&self) -> SyncStream {
        SyncStream {
            detector: EnergyDetector::new(self.window, self.threshold),
            edges: Vec::new(),
            running: RunningEnergy::default(),
            fed: 0,
        }
    }
}

/// Incremental frame synchronization over a capture arriving in blocks.
///
/// The energy comparator is inherently per-sample
/// ([`EnergyDetector::push_power`]) and the prefix sums extend exactly as
/// a whole-capture rebuild would ([`RunningEnergy::extend`]), so feeding
/// any chopping of a capture and calling [`SyncStream::finish`] returns
/// the **same edge** [`FrameSync::best_edge_in`] finds on the whole
/// buffer. Edge *qualification* is global — the bar scales with the
/// strongest edge anywhere in the capture — which is why the decision can
/// only be made at end of capture, even though all per-sample work
/// happens as blocks arrive.
#[derive(Debug, Clone)]
pub struct SyncStream {
    detector: EnergyDetector,
    edges: Vec<EnergyEdge>,
    running: RunningEnergy,
    fed: usize,
}

impl SyncStream {
    /// Rearms the stream for a new capture, keeping allocations.
    pub fn reset(&mut self) {
        self.detector.reset();
        self.edges.clear();
        self.running.rebuild(&[]);
        self.fed = 0;
    }

    /// Samples consumed so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.fed
    }

    /// `true` before any block has been fed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.fed == 0
    }

    /// Feeds the next block of the capture: runs the per-sample energy
    /// comparator at global sample indices and extends the prefix sums.
    pub fn push_block(&mut self, block: &[Iq]) {
        for (i, s) in block.iter().enumerate() {
            if let Some(edge) = self.detector.push_power(self.fed + i, s.power()) {
                self.edges.push(edge);
            }
        }
        self.running.extend(block);
        self.fed += block.len();
    }

    /// Ends the capture and returns the qualified frame-start edge —
    /// identical to [`FrameSync::best_edge_in`] over the concatenation of
    /// every pushed block.
    pub fn finish(&self, sync: &FrameSync) -> Option<EnergyEdge> {
        if self.edges.is_empty() {
            return None;
        }
        sync.qualify_edges(&self.edges, &self.running, self.fed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burst_buffer(noise_amp: f64, burst_amp: f64, lead: usize, len: usize) -> Vec<Iq> {
        let mut v = vec![Iq::new(noise_amp, 0.0); lead];
        v.extend(vec![Iq::new(burst_amp, 0.0); len]);
        v.extend(vec![Iq::new(noise_amp, 0.0); 32]);
        v
    }

    #[test]
    fn finds_frame_start() {
        let buf = burst_buffer(0.01, 0.1, 200, 100);
        let sync = FrameSync::paper_default(32);
        let edge = sync.first_edge(&buf).expect("edge expected");
        assert_eq!(edge.index, 200);
    }

    #[test]
    fn quiet_buffer_has_no_edges() {
        let buf = vec![Iq::new(0.01, 0.0); 500];
        assert!(FrameSync::paper_default(32).detect(&buf).is_empty());
    }

    #[test]
    fn accessors() {
        let sync = FrameSync::new(16, Db::new(4.5));
        assert_eq!(sync.window(), 16);
        assert_eq!(sync.threshold(), Db::new(4.5));
    }

    #[test]
    fn scratch_reuse_is_pointer_stable_and_equivalent() {
        let sync = FrameSync::paper_default(32);
        let buf = burst_buffer(0.01, 0.1, 200, 100);
        let mut scratch = sync.scratch();
        let first = sync.best_edge_in(&buf, &mut scratch);
        assert_eq!(first, sync.best_edge(&buf));
        let ptr = scratch.storage_ptr();
        // A second capture of the same length must reuse the arena
        // verbatim — same backing storage, same result.
        let second = sync.best_edge_in(&buf, &mut scratch);
        assert_eq!(first, second);
        assert_eq!(ptr, scratch.storage_ptr(), "prefix sums reallocated");
    }

    #[test]
    fn stream_matches_whole_capture_for_any_chopping() {
        let sync = FrameSync::paper_default(32);
        let mut buf = burst_buffer(0.01, 0.1, 200, 50);
        buf.extend(burst_buffer(0.01, 0.08, 150, 60));
        let mut scratch = sync.scratch();
        let want = sync.best_edge_in(&buf, &mut scratch);
        assert!(want.is_some());
        for chunk in [1usize, 17, 64, buf.len()] {
            let mut stream = sync.stream();
            for block in buf.chunks(chunk) {
                stream.push_block(block);
            }
            assert_eq!(stream.len(), buf.len());
            assert_eq!(stream.finish(&sync), want, "chunk {chunk}");
            // Reset reuses the stream for a silent capture.
            stream.reset();
            stream.push_block(&vec![Iq::new(0.01, 0.0); 400]);
            assert_eq!(stream.finish(&sync), None, "chunk {chunk} after reset");
        }
    }

    #[test]
    fn two_bursts_two_edges() {
        let mut buf = burst_buffer(0.01, 0.1, 200, 50);
        buf.extend(burst_buffer(0.01, 0.1, 150, 50));
        let edges = FrameSync::paper_default(32).detect(&buf);
        assert_eq!(edges.len(), 2);
    }
}
