//! No-op derive macros standing in for serde_derive in offline builds.
//! The workspace only uses serde for its derives (no serializer is ever
//! invoked), so expanding to nothing type-checks everything that matters.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
