//! Offline stand-in for `bytes`: declared as a dependency but unused in
//! workspace code, so the minimal aliases below are enough to resolve.

pub type Bytes = Vec<u8>;
pub type BytesMut = Vec<u8>;
