//! Offline stand-in for criterion 0.5: compiles the workspace's bench
//! targets and runs each routine a handful of times so `cargo bench`
//! smoke-checks, without any statistics machinery.

pub use std::hint::black_box;

#[derive(Default)]
pub struct Criterion {
    _sample_size: usize,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self._sample_size = n;
        self
    }

    pub fn measurement_time(self, _d: std::time::Duration) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: std::time::Duration) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        eprintln!("bench {id}: ~{} ns/iter (stub)", b.last_ns);
        self
    }

    pub fn final_summary(&mut self) {}
}

#[derive(Default)]
pub struct Bencher {
    last_ns: u128,
}

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = std::time::Instant::now();
        for _ in 0..3 {
            black_box(f());
        }
        self.last_ns = start.elapsed().as_nanos() / 3;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let start = std::time::Instant::now();
        for _ in 0..3 {
            let input = setup();
            black_box(f(input));
        }
        self.last_ns = start.elapsed().as_nanos() / 3;
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        for _ in 0..3 {
            let mut input = setup();
            black_box(f(&mut input));
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($f:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $( $f(&mut c); )+
        }
    };
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($g:path),+ $(,)?) => {
        fn main() {
            $( $g(); )+
        }
    };
}
