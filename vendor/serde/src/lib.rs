//! Offline stand-in for serde: empty marker traits plus the no-op
//! derives. Nothing in the workspace calls serialization at runtime.

pub trait Serialize {}
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
