//! Offline stand-in for crossbeam's scoped threads, implemented over
//! `std::thread::scope`. Only the `scope`/`Scope::spawn`/`join` surface
//! used by this workspace is provided.

use std::any::Any;

pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let me = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&me)),
        }
    }
}

pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}
