//! Offline stand-in for proptest 1.x covering the surface this
//! workspace uses: `proptest!` with optional `#![proptest_config(..)]`,
//! range/tuple/`Just`/`any`/`prop_oneof!`/`collection::vec` strategies,
//! `prop_map`, and the `prop_assert*` macros. Sampling is deterministic
//! (fixed seed, varied per case); there is no shrinking.

pub mod test_runner {
    use std::fmt;

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 48,
                max_shrink_iters: 0,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail<S: Into<String>>(reason: S) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject<S: Into<String>>(reason: S) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic xorshift64* stream used for sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: u64,
    }

    impl TestRng {
        pub fn seeded(seed: u64) -> Self {
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            TestRng { s: (z ^ (z >> 31)) | 1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.s;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.s = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        pub fn run_cases<F>(&mut self, mut case: F)
        where
            F: FnMut(&mut TestRng) -> TestCaseResult,
        {
            for i in 0..self.config.cases {
                let mut rng = TestRng::seeded(0xCB_3A_5EED ^ (i as u64).wrapping_mul(0x9E37));
                match case(&mut rng) {
                    Ok(()) => {}
                    Err(TestCaseError::Reject(_)) => {}
                    Err(TestCaseError::Fail(reason)) => {
                        panic!("proptest case {i} failed: {reason}");
                    }
                }
            }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Object-safe sampling, used by `BoxedStrategy` and `prop_oneof!`.
    trait DynStrategy<T> {
        fn sample_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn DynStrategy<T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample_dyn(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive samples");
        }
    }

    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_oneof!` backing type: uniform choice between strategies.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! of zero strategies");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Types with a default `any::<T>()` strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for f64 {
        fn arbitrary_sample(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, scale-varied.
            let m = rng.unit_f64() * 2.0 - 1.0;
            let e = (rng.next_u64() % 40) as i32 - 20;
            m * (2f64).powi(e)
        }
    }
    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }
    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }
    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + (rng.next_u64() as usize) % (hi - lo + 1)
        }
    }

    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, R: SizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run_cases(|rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), rng);)+
                let mut case = || -> $crate::test_runner::TestCaseResult {
                    $body
                    ::core::result::Result::Ok(())
                };
                case()
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
    };
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

pub use strategy::Strategy;
