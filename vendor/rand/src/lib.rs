//! Offline stand-in for `rand` 0.8 with the API surface this workspace
//! uses: `StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}` over integer/float (inclusive and exclusive) ranges, and
//! `seq::SliceRandom::shuffle`. Deterministic splitmix64/xoshiro-style
//! generator; NOT the real rand stream, only for offline dev builds.

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Splitmix64-seeded xorshift64* stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 of the seed so nearby seeds diverge.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            StdRng { s: (z ^ (z >> 31)) | 1 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.s;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.s = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

/// Types producible by `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
macro_rules! std_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
std_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range shapes accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
float_range!(f32, f64);

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        <f64 as Standard>::sample(self) < p
    }

    fn sample_iter<T, D: distributions::Distribution<T>>(
        self,
        distr: D,
    ) -> distributions::DistIter<D, Self, T>
    where
        Self: Sized,
    {
        distributions::DistIter {
            distr,
            rng: self,
            marker: std::marker::PhantomData,
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::Rng;

    pub trait SliceRandom {
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

pub mod distributions {
    use super::RngCore;

    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The `rand::distributions::Standard` distribution: delegates to the
    /// stub's `Standard` sampling trait.
    pub struct Standard;

    impl<T: super::Standard> Distribution<T> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample(rng)
        }
    }

    pub struct DistIter<D, R, T> {
        pub(crate) distr: D,
        pub(crate) rng: R,
        pub(crate) marker: std::marker::PhantomData<T>,
    }

    impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }
}
