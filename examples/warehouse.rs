//! Warehouse inventory: more tags than the code family can carry at once.
//!
//! §V-C: "When there are many tags distributed in the environment, we
//! choose some of them in a group to transmit data." Twenty shelf tags
//! share ten concurrent-capable codes' worth of airtime; the reader
//! rotates groups. Two grouping policies are compared: naive round-robin
//! and §VIII-D's power-homogeneous grouping (tags of similar received
//! strength transmit together — the condition Table II shows decoding
//! needs). No tag starves: every tag gets one slot per rotation either
//! way; the homogeneous policy simply loses fewer of those slots.
//!
//! Run with: `cargo run --release --example warehouse`

use cbma::mac::{AccessScheme, GroupPlan, GroupedCbmaAccess};
use cbma::prelude::*;
use cbma::sim::deployment::random_positions;
use rand::SeedableRng;

const N_TAGS: usize = 20;
const GROUP: usize = 5;
const ROTATIONS: usize = 12;

fn measure(plan: GroupPlan, scenario: &Scenario) -> (f64, Vec<u64>) {
    let mut engine = Engine::new(scenario.clone()).expect("valid scenario");
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    let n_groups = plan.len();
    let mut access = GroupedCbmaAccess::new(plan, N_TAGS);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x17A6);
    let mut stats = cbma::sim::RunStats::new(N_TAGS);
    for _ in 0..n_groups * ROTATIONS {
        let tx: Vec<usize> = access
            .next_slot(&mut rng)
            .into_iter()
            .map(|t| t as usize)
            .collect();
        let outcome = engine.run_round_subset(&tx);
        stats.record(&outcome);
    }
    let per_tag: Vec<u64> = (0..N_TAGS)
        .map(|i| (stats.ack_ratios()[i] * ROTATIONS as f64).round() as u64)
        .collect();
    (stats.fer(), per_tag)
}

fn main() -> cbma::Result<()> {
    // A bigger reader zone than the table benches: 2.4 m × 2 m of shelf
    // space, 20 tags.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x17A6_0001);
    let area = Rect::new(Point::new(-1.2, -1.0), Point::new(1.2, 1.0));
    let positions = random_positions(&mut rng, area, N_TAGS, 0.12);

    let mut scenario = Scenario::paper_default(positions.clone());
    // Twenty tags need a family with capacity ≥ 20; 2NC sized for 16
    // users gives 31 codes of length 32.
    scenario.family = FamilyKind::TwoNc { users: 16 };

    println!("warehouse inventory: {N_TAGS} tags, groups of {GROUP}, {ROTATIONS} rotations");

    // Policy 1: naive round-robin grouping.
    let naive = GroupPlan::round_robin(N_TAGS, GROUP);
    let (fer_naive, _) = measure(naive, &scenario);

    // Policy 2: power-homogeneous grouping on the theoretical field.
    let scores: Vec<f64> = positions
        .iter()
        .map(|&p| {
            scenario
                .link
                .received_power(scenario.es, p, scenario.rx)
                .get()
        })
        .collect();
    let homogeneous = GroupPlan::by_power(&scores, GROUP);
    println!(
        "\nwithin-group power spread: round-robin {:.1} dB vs homogeneous {:.1} dB",
        GroupPlan::round_robin(N_TAGS, GROUP).max_group_spread(&scores),
        homogeneous.max_group_spread(&scores)
    );
    let (fer_homog, _) = measure(homogeneous, &scenario);

    println!("\ninventory round results:");
    println!("  round-robin grouping : FER {:.1} %", fer_naive * 100.0);
    println!("  power-homogeneous    : FER {:.1} %", fer_homog * 100.0);
    println!(
        "\ngrouping tags of similar received power cut the loss rate by {:.1}x",
        fer_naive / fer_homog.max(1e-4)
    );
    Ok(())
}
