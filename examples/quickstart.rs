//! Quickstart: two concurrent backscatter tags, decoded in one collision.
//!
//! Reproduces the paper's core demonstration at minimum scale: two tags
//! spread their frames with different PN codes, transmit *simultaneously*
//! in the same band, and the receiver separates and decodes both from a
//! single captured IQ buffer.
//!
//! Run with: `cargo run --example quickstart`

use cbma::prelude::*;

fn main() -> cbma::Result<()> {
    // The paper's bench geometry (§IV): excitation source at (−50 cm, 0),
    // receiver at (50 cm, 0), tags in between.
    let scenario = Scenario::paper_default(vec![Point::new(0.0, 0.40), Point::new(0.0, -0.40)]);
    println!("CBMA quickstart — 2 concurrent tags, 2NC codes");
    println!(
        "  chip rate {} | samples/chip {} | preamble {} bits",
        scenario.phy.chip_rate,
        scenario.phy.samples_per_chip(),
        scenario.phy.preamble_bits
    );

    let mut engine = Engine::new(scenario)?;
    // Boot both tags at full backscatter power for the demo.
    for tag in engine.tags_mut() {
        tag.set_impedance(ImpedanceState::Open);
    }

    // One collided packet, inspected in detail.
    let outcome = engine.run_round();
    println!("\nfirst collision:");
    for user in &outcome.report.users {
        println!(
            "  tag {} detected at sample {} (preamble correlation {:.3}) -> {}",
            user.detection.code_index,
            user.detection.start,
            user.detection.correlation,
            if user.outcome.is_frame() {
                "frame decoded, CRC ok"
            } else {
                "decode failed"
            }
        );
    }

    // A short run for statistics.
    let stats = engine.run_rounds(50);
    let phy = engine.scenario().phy;
    println!("\nafter {} collided packets:", stats.rounds());
    println!("  frame error rate      {:.2} %", stats.fer() * 100.0);
    println!(
        "  aggregate symbol rate {:.2} Mbps",
        stats.aggregate_symbol_rate(&phy).get() / 1e6
    );
    println!(
        "  aggregate goodput     {:.1} kbps",
        stats.goodput(&phy, engine.scenario().payload_len, 16).get() / 1e3
    );
    Ok(())
}
