//! Coexistence: CBMA under WiFi, Bluetooth, and OFDM excitation.
//!
//! Reproduces the working-condition study of §VII-C.3 / Fig. 12 as a
//! runnable scenario: the same fixed 3-tag deployment is measured on a
//! clean channel, next to a busy WiFi transmitter, next to a Bluetooth
//! piconet, and finally with an intermittent OFDM excitation source
//! instead of the continuous tone. The first two barely matter (CSMA/CA
//! backoff and FHSS leave the channel mostly free); the last one hurts,
//! because the tags cannot tell when there is a signal to reflect.
//!
//! Run with: `cargo run --release --example coexistence`

use cbma::prelude::*;

fn main() -> cbma::Result<()> {
    let positions = vec![
        Point::new(0.0, 0.40),
        Point::new(0.0, -0.45),
        Point::new(0.2, 0.60),
    ];
    let base = Scenario::paper_default(positions);
    let spc = base.phy.samples_per_chip();

    println!("coexistence study: 3 fixed tags, 60 collided packets per case\n");
    println!(
        "{:<26} {:>22}",
        "working condition", "packet reception rate"
    );

    let cases: Vec<(&str, Scenario)> = vec![
        ("clean channel", base.clone()),
        ("wifi interference", {
            let mut s = base.clone();
            // A neighbouring WiFi link received at −55 dBm, ~1500-sample
            // bursts with CSMA/CA idle gaps.
            s.interference = InterferenceModel::wifi(Dbm::new(-55.0), 1500);
            s
        }),
        ("bluetooth interference", {
            let mut s = base.clone();
            // A piconet hopping every 625 µs (at 8 Msps → 5000 samples).
            s.interference = InterferenceModel::bluetooth(Dbm::new(-55.0), 5000);
            s
        }),
        ("ofdm excitation", {
            let mut s = base.clone();
            // Intermittent OFDM traffic instead of the tone: on the air
            // only 60 % of the time, in ~2000-sample bursts.
            s.excitation = Excitation::ofdm(0.6, 2000 * spc / spc);
            s
        }),
    ];

    for (label, scenario) in cases {
        let mut engine = Engine::new(scenario)?;
        for tag in engine.tags_mut() {
            tag.set_impedance(ImpedanceState::Open);
        }
        let stats = engine.run_rounds(60);
        let prr = (1.0 - stats.fer()) * 100.0;
        println!("{label:<26} {prr:>20.1} %");
    }

    println!("\nWiFi/Bluetooth cost little (duty-cycled channels); OFDM excitation");
    println!("hurts because reflection opportunities vanish during its idle gaps.");
    Ok(())
}
