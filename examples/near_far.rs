//! The near-far problem, and the impedance switch that fixes it.
//!
//! Recreates the §IV benchmark insight (Table II): two colliding tags
//! decode almost perfectly when their received powers are similar, and
//! fall apart when one dominates. Then it shows the paper's remedy — the
//! tag-side impedance switch (§V-B) — stepping the strong tag's |ΔΓ| down
//! until the powers match again.
//!
//! Run with: `cargo run --release --example near_far`

use cbma::channel::BackscatterLink;
use cbma::prelude::*;
use cbma::tag::ImpedanceBank;

fn main() -> cbma::Result<()> {
    // A controlled bench: no shadowing/fading so the power ratio is set
    // purely by geometry and the impedance states.
    let near = Point::new(0.0, 0.35); // close to the ES–RX axis
    let far = Point::new(0.4, 0.85); // weaker link
    let mut scenario = Scenario::paper_default(vec![near, far]);
    scenario.shadowing = ShadowingModel::disabled();
    scenario.multipath = MultipathModel::disabled();

    let link = BackscatterLink::paper_default();
    let bank = ImpedanceBank::paper_default();
    let p_near = link.received_power(scenario.es, near, scenario.rx);
    let p_far = link.received_power(scenario.es, far, scenario.rx);
    println!("link budget at full reflection:");
    println!("  near tag: {p_near}");
    println!(
        "  far tag : {p_far}  (difference {:.1} dB)",
        (p_near - p_far).get()
    );

    println!("\ncase 1 — both tags at full power (imbalanced):");
    let mut engine = Engine::new(scenario.clone())?;
    for tag in engine.tags_mut() {
        tag.set_impedance(ImpedanceState::Open);
    }
    let imbalanced = engine.run_rounds(60);
    report(&imbalanced);

    println!("\ncase 2 — near tag steps its impedance down to match:");
    // Pick the near-tag state whose |ΔΓ| best cancels the geometric gap.
    let gap_db = (p_near - p_far).get();
    let best_state = ImpedanceState::ALL
        .iter()
        .copied()
        .min_by(|a, b| {
            let da = (bank.relative_power(*a).get() + gap_db).abs();
            let db = (bank.relative_power(*b).get() + gap_db).abs();
            da.partial_cmp(&db).expect("finite")
        })
        .expect("four states");
    println!(
        "  chose {:?} ({:.1} dB below full reflection)",
        best_state,
        -bank.relative_power(best_state).get()
    );
    let mut engine = Engine::new(scenario)?;
    engine.tags_mut()[0].set_impedance(best_state);
    engine.tags_mut()[1].set_impedance(ImpedanceState::Open);
    let balanced = engine.run_rounds(60);
    report(&balanced);

    println!(
        "\npower balancing changed the frame error rate from {:.1} % to {:.1} %",
        imbalanced.fer() * 100.0,
        balanced.fer() * 100.0
    );
    Ok(())
}

fn report(stats: &cbma::sim::RunStats) {
    let per_tag = stats.per_tag_fer();
    println!(
        "  overall FER {:.1} % | near tag {:.1} % | far tag {:.1} %",
        stats.fer() * 100.0,
        per_tag[0].unwrap_or(0.0) * 100.0,
        per_tag[1].unwrap_or(0.0) * 100.0
    );
}
