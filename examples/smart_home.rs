//! Smart home: ten battery-free sensor tags on one WiFi excitation source.
//!
//! The paper's motivating scenario (Fig. 1): many low-rate IoT sensors
//! share a single reader concurrently. This example deploys ten tags at
//! random positions, measures the raw collision performance, then runs the
//! full adaptation stack — Algorithm 1 power control plus §V-C node
//! selection against a pool of spare mounting spots — and compares.
//!
//! Run with: `cargo run --release --example smart_home`

use cbma::prelude::*;
use cbma::sim::adaptation::Adapter;
use cbma::sim::deployment::random_positions;

fn main() -> cbma::Result<()> {
    let seeds = SeedSequence::new(2026);
    let mut placement_rng = seeds.rng("placement");

    // Ten sensors scattered over the table-scale deployment area, plus
    // spare positions an installer could move a misbehaving sensor to.
    let area = Rect::new(Point::new(-0.9, -0.9), Point::new(0.9, 0.9));
    let tags = random_positions(&mut placement_rng, area, 10, 0.10);
    // Spare mounting spots come from the strong central strip of the
    // Friis field (an installer would not screw a spare bracket into the
    // far corner).
    let spare_area = Rect::new(Point::new(-0.5, -0.6), Point::new(0.5, 0.6));
    let spares = random_positions(&mut placement_rng, spare_area, 6, 0.12);

    let mut scenario = Scenario::paper_default(tags).with_seed(seeds.derive("scenario"));
    // Showcase the receiver-side extension too: one SIC pass rescues
    // weak tags that power control alone cannot lift over the detection
    // threshold.
    scenario.rx_config.sic_passes = 1;
    println!("smart home: 10 concurrent sensor tags, 2NC codes, table-scale deployment");

    // Phase 0: raw performance at whatever impedance states the tags
    // booted with (the near-far condition power control must fix).
    let mut engine = Engine::new(scenario.clone())?;
    let raw = engine.run_rounds(40);
    println!("\nraw deployment (no adaptation):");
    print_stats(&engine, &raw);

    // Phase 1+2: power control, then node selection for stragglers.
    let mut engine = Engine::new(scenario)?;
    let adapter = Adapter::paper_default(20);
    let report = adapter.run_with_node_selection(&mut engine, &spares);
    println!("\nadaptation:");
    println!("  control rounds        {}", report.fer_history.len());
    println!("  impedance steps       {}", report.impedance_steps);
    for (tag, old, new) in &report.relocations {
        println!("  relocated tag {tag}: {old} -> {new}");
    }

    let adapted = engine.run_rounds(40);
    println!("\nadapted deployment:");
    print_stats(&engine, &adapted);

    let improvement = raw.fer() / adapted.fer().max(1e-6);
    println!("\nframe error rate improved {improvement:.1}x");
    Ok(())
}

fn print_stats(engine: &Engine, stats: &cbma::sim::RunStats) {
    let phy = engine.scenario().phy;
    println!("  frame error rate      {:.2} %", stats.fer() * 100.0);
    println!(
        "  aggregate symbol rate {:.2} Mbps",
        stats.aggregate_symbol_rate(&phy).get() / 1e6
    );
    let per_tag = stats.ack_ratios();
    let worst = per_tag
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("ten tags");
    println!(
        "  worst tag             #{} at {:.0} % ack ratio",
        worst.0,
        worst.1 * 100.0
    );
}
