//! Sensor freshness: age-of-information across access schemes.
//!
//! A smart-home hub cares about how *stale* each sensor's latest reading
//! is, not just aggregate throughput. This example drives the same 6-tag
//! deployment under four medium-access schemes — concurrent CBMA,
//! round-robin TDMA, optimal framed slotted ALOHA, and the EPC Gen2
//! Q-algorithm — and reports per-scheme delivery statistics, worst
//! staleness gaps, and mean age of information.
//!
//! Run with: `cargo run --release --example sensor_freshness`

use cbma::mac::{AccessScheme, CbmaAccess, FsaAccess, QAlgoAccess, TdmaAccess};
use cbma::prelude::*;
use rand::SeedableRng;

const N: usize = 6;
const SLOTS: usize = 60;

fn positions() -> Vec<Point> {
    vec![
        Point::new(0.15, 0.45),
        Point::new(-0.15, 0.45),
        Point::new(0.15, -0.45),
        Point::new(-0.15, -0.45),
        Point::new(0.35, 0.5),
        Point::new(-0.35, 0.5),
    ]
}

fn run(scheme: &mut dyn AccessScheme) -> (u64, f64, f64) {
    let scenario = Scenario::paper_default(positions()).with_seed(0xF2E5);
    let mut engine = Engine::new(scenario).expect("valid scenario");
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xF2E5_0001);
    let mut tracker = LatencyTracker::new(N);
    let mut delivered = 0u64;
    for _ in 0..SLOTS {
        let tx: Vec<usize> = scheme
            .next_slot(&mut rng)
            .into_iter()
            .map(|t| t as usize)
            .collect();
        let outcome = engine.run_round_subset(&tx);
        delivered += outcome.delivered.len() as u64;
        tracker.record(&outcome);
    }
    let worst_gap = (0..N)
        .map(|i| tracker.worst_gap(i).unwrap_or(SLOTS as u64) as f64)
        .fold(0.0f64, f64::max);
    let mean_age = (0..N).filter_map(|i| tracker.mean_age(i)).sum::<f64>() / N as f64;
    (delivered, worst_gap, mean_age)
}

fn main() -> cbma::Result<()> {
    println!("sensor freshness: {N} tags, {SLOTS} slots per scheme\n");
    println!(
        "{:<16} {:>10} {:>16} {:>16}",
        "scheme", "frames", "worst gap (slots)", "mean age (slots)"
    );

    let mut schemes: Vec<Box<dyn AccessScheme>> = vec![
        Box::new(CbmaAccess::new(N)),
        Box::new(TdmaAccess::new(N)),
        Box::new(FsaAccess::optimal(N)),
        Box::new(QAlgoAccess::new(N)),
    ];
    for scheme in schemes.iter_mut() {
        let name = scheme.name();
        let (frames, worst, age) = run(scheme.as_mut());
        println!("{name:<16} {frames:>10} {worst:>16.0} {age:>16.1}");
    }

    println!("\nreading: concurrent CBMA refreshes every sensor every slot, so its");
    println!("age stays near 1; serialized schemes age each sensor by ~n slots");
    println!("between visits, and random access adds collision gaps on top.");
    Ok(())
}
